"""Decision audit journal and online invariant monitor.

The paper's guarantees are *invariants*: Appro never oversubscribes a
resource slot (Theorem 1's admission check), Heu migrations always land
on the closest feasible neighbour (Theorem 2), DynamicRR's successive
elimination only discards arms whose confidence intervals separate
(Theorem 3).  This module makes every scheduling decision a
first-class, journaled, checkable event:

* :class:`Journal` collects the canonical decision stream of one run -
  lifecycle events from the engines plus algorithm-level decisions
  (migrations, rounding rejections/admissions, bandit arm plays and
  eliminations, station outages) - as JSON-serializable dicts with no
  wall-clock content, so two executions of the same deterministic run
  produce byte-identical journals;
* :class:`NullJournal` is the zero-overhead default (mirroring
  :data:`~repro.telemetry.tracer.NULL_TRACER`): unjournaled runs pay
  one attribute lookup and a no-op call per emission point;
* :class:`InvariantMonitor` consumes the stream *during* the run
  (attach it to a journal) or post-hoc and checks ~10 invariants, in
  ``strict`` mode (raise :class:`~repro.exceptions.InvariantViolation`
  on first failure) or ``collect`` mode (accumulate
  :class:`Violation` findings for a report).

Journals ride home per-:class:`~repro.experiments.executor.RunSpec` on
``RunRecord.journal`` (like ``.trace``) and
:func:`collect_sweep_journal` merges them deterministically across the
process pool, so serial/parallel byte-identity is a checkable,
localizable property (``python -m repro.experiments trace-diff``).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Any, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from ..exceptions import ConfigurationError, InvariantViolation

#: Pseudo station id of the remote cloud path (mirrors
#: ``repro.sim.online_engine.CLOUD_STATION`` without importing it -
#: the cloud has unbounded capacity, so capacity/outage checks skip it).
_CLOUD = -1


class NullJournal:
    """The zero-overhead default: every operation is a no-op."""

    enabled = False

    def record(self, event) -> None:
        """Discard an event."""

    def attach(self, observer) -> None:
        """Discard an observer (nothing will ever be delivered)."""

    def events(self) -> List[Dict[str, Any]]:
        """A null journal never has events."""
        return []

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        """Nothing to close."""

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullJournal()"


class Journal:
    """Canonical, ordered decision stream of one run.

    Events are stored as plain dicts (see
    :meth:`repro.sim.events.Event.to_record`) in emission order, which
    is deterministic for a deterministic run - the journal contains no
    wall-clock fields at all, so its serialized form is directly
    comparable between executions.

    Observers attached with :meth:`attach` (typically an
    :class:`InvariantMonitor`) see each event synchronously as it is
    recorded; a strict monitor therefore fails the run at the exact
    decision that broke an invariant.

    **Streaming mode** (opt-in, for the long-lived admission service):
    pass ``stream_path`` and events are flushed to disk as JSONL in
    chunks of ``flush_every``, after which they leave memory - the
    journal stays flat no matter how long the run.  The on-disk format
    is byte-identical to :func:`repro.telemetry.export.write_jsonl`
    (``json.dumps(event, sort_keys=True)`` per line), so streamed
    journals diff directly with ``trace-diff``.  In streaming mode
    :meth:`events` returns only the *unflushed* tail.  ``append=True``
    reopens an existing journal file to continue it after a checkpoint
    restore; pass ``already_recorded`` so indices delivered to
    observers keep counting from the right place.

    Args:
        stream_path: JSONL file to stream events to (None = in-memory).
        flush_every: flush to disk every this many buffered events
            (the analysis-safe knob: any value produces the same bytes,
            only syscall batching changes).
        append: reopen ``stream_path`` and append instead of truncating.
        already_recorded: events already in the reopened file.
    """

    enabled = True

    def __init__(self, stream_path: Optional[str] = None,
                 flush_every: int = 1024, append: bool = False,
                 already_recorded: int = 0) -> None:
        if flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every}")
        if already_recorded < 0:
            raise ConfigurationError(
                f"already_recorded must be >= 0, got {already_recorded}")
        if append and stream_path is None:
            raise ConfigurationError(
                "append=True requires a stream_path")
        self._events: List[Dict[str, Any]] = []
        self._observers: List[Any] = []
        self._stream_path = stream_path
        self._flush_every = int(flush_every)
        self._total = int(already_recorded) if append else 0
        self._handle = None
        if stream_path is not None:
            self._handle = open(stream_path, "ab" if append else "wb")
            self._handle.seek(0, os.SEEK_END)
            self._bytes = self._handle.tell()
        else:
            self._bytes = 0

    @property
    def streaming(self) -> bool:
        """True when events are flushed to a JSONL file."""
        return self._handle is not None

    @property
    def total_recorded(self) -> int:
        """Events recorded over the journal's lifetime (incl. flushed)."""
        return self._total

    def attach(self, observer) -> None:
        """Deliver every future event to ``observer.observe(event, i)``."""
        self._observers.append(observer)

    def record(self, event) -> None:
        """Append one event (an ``Event`` or a pre-built dict)."""
        record = event.to_record() if hasattr(event, "to_record") \
            else dict(event)
        index = self._total
        self._total += 1
        self._events.append(record)
        for observer in self._observers:
            observer.observe(record, index)
        if self._handle is not None \
                and len(self._events) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered events to the stream file and drop them.

        No-op for in-memory journals.  Lines match
        :func:`~repro.telemetry.export.write_jsonl` byte for byte.
        """
        if self._handle is None or not self._events:
            return
        chunk = "".join(json.dumps(event, sort_keys=True) + "\n"
                        for event in self._events)
        data = chunk.encode("utf-8")
        self._handle.write(data)
        self._handle.flush()
        self._bytes += len(data)
        self._events.clear()

    def byte_position(self) -> int:
        """Flush, then return the stream file's byte length.

        A checkpoint stores this so a resumed service can truncate a
        journal that ran past the checkpoint back to the exact byte.
        """
        self.flush()
        return self._bytes

    def close(self) -> None:
        """Flush and close the stream file (no-op in-memory)."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        """Flush and close - *also* when the block raised.

        A streaming journal used as a context manager therefore leaves
        a parseable JSONL prefix of everything recorded before the
        crash: each line is complete (whole-line writes, flushed), so
        ``trace-diff`` and checkpoint resume-truncation accept the
        file as-is.
        """
        self.close()

    def events(self) -> List[Dict[str, Any]]:
        """The journal as a list of event dicts (shallow copies).

        In streaming mode this is only the unflushed tail - read the
        stream file for the full history.
        """
        return [dict(event) for event in self._events]

    def clear(self) -> None:
        """Drop unflushed events (observers stay attached)."""
        self._total -= len(self._events)
        self._events.clear()

    def __len__(self) -> int:
        return self._total

    def __repr__(self) -> str:
        if self.streaming:
            return (f"Journal(stream={self._stream_path!r}, "
                    f"events={self._total}, buffered={len(self._events)})")
        return f"Journal(events={len(self._events)})"


#: The shared no-op journal (also the initial current journal).
NULL_JOURNAL = NullJournal()

_current = NULL_JOURNAL


def get_journal():
    """The process-local current journal (:data:`NULL_JOURNAL` default)."""
    return _current


def set_journal(journal: Optional[Journal]):
    """Install ``journal`` as current (None restores the null journal).

    Returns:
        The journal now current.
    """
    global _current
    _current = journal if journal is not None else NULL_JOURNAL
    return _current


@contextmanager
def use_journal(journal: Optional[Journal]) -> Iterator[Any]:
    """Temporarily install a journal; always restores the previous one."""
    previous = _current
    set_journal(journal)
    try:
        yield get_journal()
    finally:
        set_journal(previous)


# ----------------------------------------------------------------------
# Invariant monitor
# ----------------------------------------------------------------------

#: Checked invariant -> what it asserts.  The monitor's report and the
#: "Invariant audit" section enumerate exactly these names.
INVARIANTS: Dict[str, str] = {
    "slot_order": "time-slot events occur in non-decreasing slot "
                  "order within a run",
    "lifecycle": "requests follow ARRIVAL -> START (-> PREEMPT_WAIT "
                 "-> START)* -> COMPLETE/DROP",
    "double_terminal": "no request completes or drops twice",
    "capacity": "reserved/shared MHz never exceed station capacity "
                "under its sharing model",
    "reward_consistency": "a COMPLETE carries the reward settled at "
                          "its START",
    "reward_accounting": "journaled rewards and admissions match the "
                         "ScheduleResult",
    "migration_target": "migrations land on the closest feasible "
                        "neighbour (Theorem 2)",
    "arm_replay": "eliminated bandit arms are never replayed",
    "arm_separation": "arms are eliminated only when confidence "
                      "intervals separate (Theorem 3)",
    "station_outage": "no request starts on a station that is down",
    "deferred_resolution": "every ADMIT_DEFERRED request is later "
                           "started, shed, or dropped (never lost)",
}

#: Event kinds that advance a request's lifecycle state machine.
_LIFECYCLE_KINDS = ("arrival", "start", "preempt_wait", "complete",
                    "drop")

#: Kinds whose ``slot`` is a *resource-slot*/batch index of Algorithm 1,
#: not a time slot (see :class:`repro.sim.events.Event`) - the
#: slot-order invariant does not apply to them.
_RESOURCE_SLOT_KINDS = ("admit", "reject_rounding", "migrate")

#: Kinds emitted by the streaming admission service
#: (:mod:`repro.service`): ingress/backpressure decisions and
#: checkpoint lifecycle markers.
_SERVICE_KINDS = ("admit_deferred", "shed", "checkpoint", "resume",
                  "metrics_snapshot")


@dataclass(frozen=True)
class Violation:
    """One invariant failure located in a journal.

    Attributes:
        invariant: name of the broken invariant (a key of
            :data:`INVARIANTS`).
        message: human-readable finding.
        index: position of the offending event in the stream (-1 for
            end-of-run accounting checks).
        event: the offending event dict (None for accounting checks).
    """

    invariant: str
    message: str
    index: int = -1
    event: Optional[Mapping[str, Any]] = None

    def __str__(self) -> str:
        where = f" at event {self.index}" if self.index >= 0 else ""
        return f"[{self.invariant}]{where}: {self.message}"


class InvariantMonitor:
    """Checks the paper's invariants over a decision stream.

    Attach to a :class:`Journal` to check *online* (during the run), or
    replay a recorded journal through :meth:`observe` /
    :meth:`check_events` post-hoc.  Call :meth:`finish` with the run's
    result (or its metric row) to close the books with the reward
    accounting check.

    Args:
        mode: ``"strict"`` raises
            :class:`~repro.exceptions.InvariantViolation` on the first
            failure; ``"collect"`` accumulates findings in
            :attr:`violations`.
        capacities: optional station id -> capacity MHz override.  By
            default capacities are learned from the journal's own
            ``STATION_UP`` announcements.
        tol: absolute slack for float comparisons.
    """

    def __init__(self, mode: str = "collect",
                 capacities: Optional[Mapping[int, float]] = None,
                 tol: float = 1e-6) -> None:
        if mode not in ("strict", "collect"):
            raise ConfigurationError(
                f"mode must be 'strict' or 'collect', got {mode!r}")
        if tol < 0:
            raise ConfigurationError(f"tol must be >= 0, got {tol}")
        self.mode = mode
        self.tol = tol
        self.violations: List[Violation] = []
        #: Invariant name -> number of times it was evaluated.
        self.checks: Dict[str, int] = {name: 0 for name in INVARIANTS}
        self._capacity: Dict[int, float] = dict(capacities or {})
        self._last_slot: Optional[int] = None
        self._state: Dict[int, str] = {}       # request -> lifecycle
        self._start_reward: Dict[int, float] = {}
        self._reserved: Dict[int, float] = {}  # station -> committed MHz
        self._down: set = set()                # stations currently down
        self._eliminated: set = set()          # dead bandit arms
        self._deferred: set = set()            # unresolved deferrals
        self._num_events = 0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when no invariant has failed so far."""
        return not self.violations

    def report(self) -> str:
        """Human-readable audit summary (one line per invariant)."""
        lines = [f"invariant audit: {self._num_events} events, "
                 f"{len(self.violations)} violation(s)"]
        for name in INVARIANTS:
            fails = sum(1 for v in self.violations
                        if v.invariant == name)
            mark = "FAIL" if fails else "ok"
            lines.append(f"  {name:<18} {self.checks[name]:>6} checks  "
                         f"{mark}")
        for violation in self.violations:
            lines.append(f"  ! {violation}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def observe(self, event: Mapping[str, Any], index: int = -1) -> None:
        """Check one event (the :class:`Journal` observer surface)."""
        if index < 0:
            index = self._num_events
        self._num_events += 1
        kind = event.get("kind")
        self._check_slot_order(event, index)
        if kind in _LIFECYCLE_KINDS:
            self._check_lifecycle(event, index)
        if kind == "station_up":
            station = event.get("station")
            if station is not None:
                self._down.discard(station)
                value = event.get("value")
                if value is not None and station not in self._capacity:
                    self._capacity[station] = float(value)
        elif kind == "station_down":
            if event.get("station") is not None:
                self._down.add(event["station"])
        elif kind == "migrate":
            self._check_migration(event, index)
        elif kind == "admit_deferred":
            request = event.get("request")
            if request is not None:
                self.checks["deferred_resolution"] += 1
                self._deferred.add(request)
        elif kind == "shed":
            self._check_shed(event, index)
        elif kind == "arm_selected":
            self._check_arm_replay(event, index)
        elif kind == "arm_eliminated":
            self._check_elimination(event, index)
        if kind == "start":
            self._check_station_up(event, index)
        if kind in ("start", "admit", "drop"):
            # Any of these resolves a pending deferral.
            self._deferred.discard(event.get("request"))
        self._check_capacity(event, index)

    def check_events(self, events: Sequence[Mapping[str, Any]]
                     ) -> "InvariantMonitor":
        """Replay a recorded journal; returns self for chaining."""
        for index, event in enumerate(events):
            self.observe(event, index)
        return self

    def finish(self, result=None) -> "InvariantMonitor":
        """Close the books: reward accounting against the run's result.

        Args:
            result: a :class:`~repro.core.assignment.ScheduleResult`,
                or any mapping with ``total_reward`` /
                ``num_admitted`` entries (e.g. a
                :class:`~repro.sim.results.RunRecord` metric row).
                ``None`` skips the accounting check (the
                deferred-resolution check still runs).
        """
        self.checks["deferred_resolution"] += 1
        if self._deferred:
            sample = sorted(self._deferred)[:10]
            self._fail(Violation(
                "deferred_resolution",
                f"{len(self._deferred)} deferred request(s) never "
                f"resolved by START/ADMIT, SHED, or DROP: {sample}"))
        if result is None:
            return self
        if isinstance(result, Mapping):
            total = result.get("total_reward")
            admitted = result.get("num_admitted")
        else:
            total = getattr(result, "total_reward", None)
            admitted = getattr(result, "num_admitted", None)
        journaled = sum(self._start_reward.values())
        starts = len(self._start_reward)
        if total is not None:
            self.checks["reward_accounting"] += 1
            slack = self.tol * max(1.0, abs(float(total)))
            if abs(journaled - float(total)) > slack:
                self._fail(Violation(
                    "reward_accounting",
                    f"journaled START rewards sum to {journaled:.6g} "
                    f"but the result reports total_reward "
                    f"{float(total):.6g}"))
        if admitted is not None:
            self.checks["reward_accounting"] += 1
            if starts != int(admitted):
                self._fail(Violation(
                    "reward_accounting",
                    f"{starts} journaled START event(s) but the result "
                    f"reports {int(admitted)} admitted request(s)"))
        return self

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def _fail(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.mode == "strict":
            raise InvariantViolation(violation)

    def _check_slot_order(self, event, index) -> None:
        slot = event.get("slot")
        if slot is None or event.get("kind") in _RESOURCE_SLOT_KINDS:
            return
        self.checks["slot_order"] += 1
        if self._last_slot is not None and slot < self._last_slot:
            self._fail(Violation(
                "slot_order",
                f"slot went backwards: {self._last_slot} -> {slot}",
                index, event))
        else:
            self._last_slot = slot

    def _check_lifecycle(self, event, index) -> None:
        kind = event["kind"]
        request = event.get("request")
        if request is None:
            return
        state = self._state.get(request)
        self.checks["lifecycle"] += 1
        if kind == "arrival":
            if state is not None:
                self._fail(Violation(
                    "lifecycle",
                    f"request {request} arrived twice", index, event))
            self._state[request] = "arrived"
        elif kind == "start":
            if state not in ("arrived", "waiting"):
                self._fail(Violation(
                    "lifecycle",
                    f"request {request} started from state "
                    f"{state or 'unseen'} (expected 'arrived' or "
                    f"'waiting')", index, event))
            self._state[request] = "active"
            self._start_reward[request] = float(event.get("reward", 0.0))
        elif kind == "preempt_wait":
            if state != "active":
                self._fail(Violation(
                    "lifecycle",
                    f"request {request} was preempted from state "
                    f"{state or 'unseen'} (expected 'active')",
                    index, event))
            self._state[request] = "waiting"
        elif kind in ("complete", "drop"):
            self.checks["double_terminal"] += 1
            if state == "done":
                self._fail(Violation(
                    "double_terminal",
                    f"request {request} reached a second terminal "
                    f"event ({kind})", index, event))
            elif kind == "complete" and state != "active":
                self._fail(Violation(
                    "lifecycle",
                    f"request {request} completed from state "
                    f"{state or 'unseen'} (expected 'active')",
                    index, event))
            elif kind == "drop" and state not in ("arrived", "active",
                                                  "waiting"):
                self._fail(Violation(
                    "lifecycle",
                    f"request {request} dropped from state "
                    f"{state or 'unseen'}", index, event))
            self._state[request] = "done"
            if kind == "complete":
                self._check_reward_consistency(event, index, request)

    def _check_reward_consistency(self, event, index, request) -> None:
        settled = self._start_reward.get(request)
        if settled is None:
            return  # the lifecycle check already flagged this
        self.checks["reward_consistency"] += 1
        reward = float(event.get("reward", 0.0))
        if abs(reward - settled) > self.tol * max(1.0, abs(settled)):
            self._fail(Violation(
                "reward_consistency",
                f"request {request} completed with reward {reward:.6g} "
                f"but settled {settled:.6g} at start", index, event))

    def _check_capacity(self, event, index) -> None:
        """Capacity per sharing model.

        Committed reservations (``reserved_mhz``: offline admissions,
        migration shares) accumulate per station and must never exceed
        capacity.  Elastic shares (``share_mhz``: online round-robin)
        are bounded by capacity individually - they are recomputed
        every slot, so sums across start times are not constrained.
        """
        kind = event.get("kind")
        reserved = event.get("reserved_mhz")
        share = event.get("share_mhz")
        station = event.get("station")
        if reserved is not None and station is not None \
                and station != _CLOUD:
            reserved = float(reserved)
            if kind == "migrate":
                src = event.get("src")
                if src is not None:
                    self._reserved[src] = \
                        self._reserved.get(src, 0.0) - reserved
            self._reserved[station] = \
                self._reserved.get(station, 0.0) + reserved
            capacity = self._capacity.get(station)
            if capacity is not None:
                self.checks["capacity"] += 1
                if self._reserved[station] > capacity + self.tol:
                    self._fail(Violation(
                        "capacity",
                        f"station {station} oversubscribed: "
                        f"{self._reserved[station]:.6g} MHz reserved "
                        f"of {capacity:.6g} MHz capacity",
                        index, event))
        if share is not None and station is not None \
                and station != _CLOUD:
            capacity = self._capacity.get(station)
            if capacity is not None:
                self.checks["capacity"] += 1
                if float(share) > capacity + self.tol:
                    self._fail(Violation(
                        "capacity",
                        f"share {float(share):.6g} MHz at station "
                        f"{station} exceeds its capacity "
                        f"{capacity:.6g} MHz", index, event))

    def _check_migration(self, event, index) -> None:
        """Theorem 2: the target is the closest feasible neighbour.

        The MIGRATE event carries, in ``detail``, the closer candidate
        stations (delay order from the donor's station) that were
        skipped, each with the free MHz observed at decision time and
        the skip reason.  A closer station with enough room that was
        not excluded for the donor's latency means the migration did
        not land on the closest feasible neighbour.
        """
        share = event.get("reserved_mhz")
        skipped = event.get("detail") or ()
        self.checks["migration_target"] += 1
        for entry in skipped:
            try:
                station, free, reason = entry
            except (TypeError, ValueError):
                self._fail(Violation(
                    "migration_target",
                    f"malformed skipped-candidate entry {entry!r}",
                    index, event))
                continue
            if reason not in ("capacity", "latency"):
                self._fail(Violation(
                    "migration_target",
                    f"unknown skip reason {reason!r} for station "
                    f"{station}", index, event))
            elif (reason == "capacity" and share is not None
                    and float(free) >= float(share) - self.tol):
                self._fail(Violation(
                    "migration_target",
                    f"station {station} was closer and had "
                    f"{float(free):.6g} MHz free for a "
                    f"{float(share):.6g} MHz share, yet the task "
                    f"migrated to station {event.get('station')}",
                    index, event))

    def _check_arm_replay(self, event, index) -> None:
        arm = event.get("arm")
        if arm is None:
            return
        self.checks["arm_replay"] += 1
        if arm in self._eliminated:
            self._fail(Violation(
                "arm_replay",
                f"arm {arm} was eliminated but replayed", index, event))

    def _check_elimination(self, event, index) -> None:
        arm = event.get("arm")
        if arm is None:
            return
        self.checks["arm_replay"] += 1
        if arm in self._eliminated:
            self._fail(Violation(
                "arm_replay",
                f"arm {arm} was eliminated twice", index, event))
        self._eliminated.add(arm)
        detail = event.get("detail")
        if detail is not None and len(detail) == 2:
            self.checks["arm_separation"] += 1
            ucb, best_lcb = float(detail[0]), float(detail[1])
            if ucb > best_lcb + self.tol:
                self._fail(Violation(
                    "arm_separation",
                    f"arm {arm} eliminated with UCB {ucb:.6g} >= best "
                    f"LCB {best_lcb:.6g} (intervals had not separated)",
                    index, event))

    def _check_shed(self, event, index) -> None:
        """A SHED is terminal: the request never enters the engine.

        Shares the double-terminal books with COMPLETE/DROP so a
        request cannot be shed after (or before) any other terminal
        event, and resolves any pending deferral.
        """
        request = event.get("request")
        if request is None:
            return
        self.checks["double_terminal"] += 1
        if self._state.get(request) == "done":
            self._fail(Violation(
                "double_terminal",
                f"request {request} was shed after a terminal event",
                index, event))
        self._state[request] = "done"
        self._deferred.discard(request)

    def _check_station_up(self, event, index) -> None:
        station = event.get("station")
        if station is None or station == _CLOUD:
            return
        self.checks["station_outage"] += 1
        if station in self._down:
            self._fail(Violation(
                "station_outage",
                f"request {event.get('request')} started on station "
                f"{station} during its outage", index, event))


# ----------------------------------------------------------------------
# Sweep-level plumbing
# ----------------------------------------------------------------------

def collect_sweep_journal(records: Sequence[Any]
                          ) -> List[Dict[str, Any]]:
    """Merge per-run journals of a sweep into one event stream.

    Each record (duck-typed: ``journal`` / ``algorithm`` / ``x`` /
    ``seed`` attributes, i.e. a :class:`~repro.sim.results.RunRecord`)
    contributes its events annotated with the record's canonical
    position and identity.  Records are visited in the order given -
    the canonical RunSpec order the executor guarantees - so the merged
    stream is deterministic no matter which worker produced which run.
    Unjournaled records contribute nothing.
    """
    merged: List[Dict[str, Any]] = []
    for run_index, record in enumerate(records):
        journal = getattr(record, "journal", None)
        if not journal:
            continue
        for event in journal:
            annotated = dict(event)
            annotated["run"] = run_index
            annotated["algorithm"] = record.algorithm
            annotated["x"] = record.x
            annotated["seed"] = record.seed
            merged.append(annotated)
    return merged


@dataclass
class AuditOutcome:
    """Aggregate result of auditing every journaled run of a sweep.

    Attributes:
        runs_audited: journaled runs that were checked.
        checks: invariant name -> total evaluations across runs.
        violations: every finding, tagged with its run's identity.
    """

    runs_audited: int
    checks: Dict[str, int]
    violations: List[Tuple[str, Violation]]

    @property
    def ok(self) -> bool:
        """True when at least one run was audited and none failed."""
        return self.runs_audited > 0 and not self.violations


def audit_records(records: Sequence[Any],
                  capacities: Optional[Mapping[int, float]] = None
                  ) -> AuditOutcome:
    """Run a collect-mode invariant audit over journaled sweep records.

    Each record with a journal is replayed through a fresh
    :class:`InvariantMonitor` (journals are per-run streams - lifecycle
    state must not leak between runs) and closed with the record's own
    metric row, so reward accounting is checked against exactly what
    the sweep measured.
    """
    checks = {name: 0 for name in INVARIANTS}
    violations: List[Tuple[str, Violation]] = []
    audited = 0
    for record in records:
        journal = getattr(record, "journal", None)
        if not journal:
            continue
        audited += 1
        monitor = InvariantMonitor(mode="collect",
                                   capacities=capacities)
        monitor.check_events(journal)
        monitor.finish(getattr(record, "metrics", None))
        for name, count in monitor.checks.items():
            checks[name] += count
        tag = (f"{record.algorithm} x={record.x:g} "
               f"seed={record.seed}")
        violations.extend((tag, v) for v in monitor.violations)
    return AuditOutcome(runs_audited=audited, checks=checks,
                        violations=violations)
