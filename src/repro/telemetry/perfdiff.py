"""Localize performance regressions between two profile digests.

``python -m repro.experiments perf-diff OLD NEW`` compares the
:class:`~repro.telemetry.profiling.ProfileDigest` sets carried by two
artifacts - ``PROF_*.json`` exports, ``BENCH_*.json`` manifests with a
``profiles`` section, JSONL ledgers, or bare digest files - and answers
the question ``bench-diff`` cannot: *which span* ate the time.

Two classes of signal, mirroring the deterministic/advisory split of
:mod:`repro.telemetry.regression`:

* **Deterministic attribution** - span paths, per-span call counts,
  and domain counters (``simplex_iterations_total{phase}``,
  ``lp_solves_total{mode}``, ...) are pure functions of config + seeds.
  They gate at ``--tol`` in *both* directions: a new hot span, a 4x
  jump in phase-2 simplex iterations, or a vanished ``presolve`` span
  all exit 1 on any machine, however noisy its clock.

* **Advisory timing** - per-span self/cumulative wall time is printed
  (sorted by absolute self-time delta) but only gates when ``--gate
  REL`` is given, and then only for spans whose new self time clears
  the ``--min-ms`` floor, so sub-millisecond jitter cannot flake CI.

The report ends with the **worst regressed span**: the span whose
deterministic or gated-time relative delta is largest, together with
its self-time movement and the counter deltas
:data:`~repro.telemetry.profiling.COUNTER_OWNERS` joins onto it -
"simplex phase-2 iterations +4.1x, self-time +380 ms in
``offline_run/build_lp/lp_solve``".

Exit codes match ``bench-diff`` / ``trace-diff``:

* ``0`` - no gated regression (timing drift may still be listed);
* ``1`` - at least one digest regressed (localization printed);
* ``2`` - an input is unusable.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import (Dict, List, Mapping, Optional, Sequence, Tuple)

from ..exceptions import ConfigurationError
from .profiling import (COUNTER_OWNERS, PATH_SEP, ProfileDigest,
                        counter_base, load_profile_set)

#: Exit codes, mirroring bench-diff and trace-diff.
EXIT_OK = 0
EXIT_REGRESSED = 1
EXIT_ERROR = 2

#: Relative delta reported when a key exists on only one side.
INF_REL = float("inf")


@dataclass
class PerfDelta:
    """One compared quantity between two digests."""

    digest: str   #: digest name (algorithm or group/algorithm)
    kind: str     #: ``"calls"``, ``"counter"``, or ``"self_s"``
    key: str      #: span path or counter series id
    old: float
    new: float
    regressed: bool = False

    @property
    def rel(self) -> float:
        """Relative delta ``(new-old)/old`` (inf when old == 0)."""
        if self.old == 0.0:  # repro: noqa NUM001 -- structural zero: absent span/counter
            return 0.0 if self.new == 0.0 else INF_REL  # repro: noqa NUM001 -- structural zero
        return (self.new - self.old) / abs(self.old)

    @property
    def span_leaf(self) -> Optional[str]:
        """The span this delta attributes to (for counter joins)."""
        if self.kind == "counter":
            return COUNTER_OWNERS.get(counter_base(self.key))
        return self.key.rsplit(PATH_SEP, 1)[-1]

    def describe(self) -> str:
        label = {"calls": "calls", "counter": "counter",
                 "self_s": "self_ms"}[self.kind]
        if self.kind == "self_s":
            old, new = f"{self.old * 1e3:.2f}", f"{self.new * 1e3:.2f}"
        else:
            old, new = f"{self.old:g}", f"{self.new:g}"
        rel = self.rel
        if rel == INF_REL:
            arrow = "(new)" if self.old == 0.0 else "(gone)"  # repro: noqa NUM001 -- structural zero
        else:
            arrow = f"({rel:+.1%})"
        return f"{label} {old} -> {new} {arrow}"


def _span_rows(digest: str, old: ProfileDigest, new: ProfileDigest,
               tol: float) -> List[PerfDelta]:
    rows: List[PerfDelta] = []
    for path in sorted(set(old.spans) | set(new.spans)):
        left = old.spans.get(path)
        right = new.spans.get(path)
        calls = PerfDelta(digest, "calls", path,
                          float(left.calls if left else 0),
                          float(right.calls if right else 0))
        calls.regressed = (calls.rel == INF_REL
                           or abs(calls.rel) > tol)
        rows.append(calls)
        rows.append(PerfDelta(digest, "self_s", path,
                              left.self_s if left else 0.0,
                              right.self_s if right else 0.0))
    return rows


def _counter_rows(digest: str, old: ProfileDigest,
                  new: ProfileDigest, tol: float) -> List[PerfDelta]:
    rows: List[PerfDelta] = []
    for series in sorted(set(old.counters) | set(new.counters)):
        row = PerfDelta(digest, "counter", series,
                        old.counters.get(series, 0.0),
                        new.counters.get(series, 0.0))
        row.regressed = (row.rel == INF_REL or abs(row.rel) > tol)
        rows.append(row)
    return rows


def _gate_timing(rows: Sequence[PerfDelta], gate: Optional[float],
                 min_ms: float) -> None:
    """Mark gated self-time regressions in place (``--gate``)."""
    if gate is None:
        return
    for row in rows:
        if row.kind != "self_s":
            continue
        if row.new * 1e3 < min_ms:
            continue
        rel = row.rel
        if rel == INF_REL or rel > gate:
            row.regressed = True


def diff_digests(digest: str, old: ProfileDigest, new: ProfileDigest,
                 tol: float = 0.0, gate: Optional[float] = None,
                 min_ms: float = 5.0) -> List[PerfDelta]:
    """All compared quantities of one digest pair, gates applied."""
    rows = _span_rows(digest, old, new, tol)
    rows.extend(_counter_rows(digest, old, new, tol))
    _gate_timing(rows, gate, min_ms)
    return rows


def worst_regression(rows: Sequence[PerfDelta]
                     ) -> Optional[Tuple[str, List[PerfDelta]]]:
    """The span path a regression localizes to, with its evidence.

    Scores every regressed row; counter regressions attach to the
    owning span's paths (every path whose leaf matches - if none is
    present the counter stands alone).  Returns ``(span path or
    series, supporting rows)`` of the worst offender, or None when
    nothing regressed.
    """
    regressed = [row for row in rows if row.regressed]
    if not regressed:
        return None

    def score(row: PerfDelta) -> Tuple[float, float]:
        rel = abs(row.rel)
        magnitude = (abs(row.new - row.old)
                     if row.kind == "self_s"
                     else abs(row.new - row.old) * 1e-6)
        return (1e18 if rel == INF_REL else rel, magnitude)

    span_paths = {row.key for row in rows if row.kind != "counter"}

    def anchor(row: PerfDelta) -> str:
        if row.kind != "counter":
            return row.key
        leaf = row.span_leaf
        if leaf is not None:
            owners = sorted(path for path in span_paths
                            if path.rsplit(PATH_SEP, 1)[-1] == leaf)
            if owners:
                return owners[0]
        return row.key

    worst = max(regressed, key=lambda row: (score(row), row.key))
    where = anchor(worst)
    evidence = [row for row in rows
                if anchor(row) == where or row.key == where]
    return where, evidence


def render_report(old_name: str, new_name: str,
                  rows_by_digest: Mapping[str, Sequence[PerfDelta]],
                  only: Sequence[str] = (), top: int = 10) -> str:
    """The perf-diff report: per-digest tables + worst-span headline."""
    lines = [f"perf-diff: {old_name} -> {new_name}"]
    for name in only:
        lines.append(f"  ! digest {name!r} present on one side only "
                     f"- not compared")
    any_regressed = False
    for name in sorted(rows_by_digest):
        rows = list(rows_by_digest[name])
        lines.append("")
        lines.append(f"== {name} ==")
        det = [row for row in rows if row.kind != "self_s"]
        det_regressed = [row for row in det if row.regressed]
        if det_regressed:
            lines.append("  deterministic attribution REGRESSED "
                         f"({len(det_regressed)} of {len(det)} keys):")
            for row in det_regressed:
                lines.append(f"    {row.key}: {row.describe()}")
        else:
            lines.append(f"  deterministic attribution ok "
                         f"({len(det)} keys: span calls + counters)")
        timing = sorted(
            (row for row in rows if row.kind == "self_s"
             and (row.old or row.new)),
            key=lambda row: (-abs(row.new - row.old), row.key))
        shown = timing[:max(0, top)]
        if shown:
            gated = any(row.regressed for row in timing)
            label = "gated" if gated else "advisory"
            lines.append(f"  self-time deltas ({label}, top "
                         f"{len(shown)} by |delta|):")
            for row in shown:
                flag = "  REGRESSED" if row.regressed else ""
                lines.append(f"    {row.key}: {row.describe()}{flag}")
            omitted = len(timing) - len(shown)
            if omitted > 0:
                lines.append(f"    ... {omitted} smaller timing "
                             f"row(s) omitted ...")
        localized = worst_regression(rows)
        if localized is not None:
            any_regressed = True
            where, evidence = localized
            lines.append(f"  worst regressed span: {where}")
            for row in evidence:
                if row.kind == "counter":
                    lines.append(f"    counter {row.key}: "
                                 f"{row.describe()}")
                else:
                    lines.append(f"    {row.describe()}")
    lines.append("")
    if any_regressed:
        lines.append("RESULT: performance attribution regressed "
                     "(exit 1)")
    else:
        lines.append("RESULT: no gated regression (exit 0)")
    return "\n".join(lines)


def diff_profile_sets(old_set: Mapping[str, ProfileDigest],
                      new_set: Mapping[str, ProfileDigest],
                      tol: float = 0.0, gate: Optional[float] = None,
                      min_ms: float = 5.0,
                      names: Tuple[str, str] = ("OLD", "NEW"),
                      top: int = 10) -> Tuple[int, str]:
    """Compare two digest sets by name.

    Returns:
        ``(exit_code, report)``.  Digests present on only one side are
        noted but do not gate (a PR may legitimately add or retire an
        algorithm); at least one common name is required.
    """
    common = sorted(set(old_set) & set(new_set))
    if not common:
        raise ConfigurationError(
            f"no common digest names between {names[0]} "
            f"({sorted(old_set)}) and {names[1]} ({sorted(new_set)})")
    only = sorted(set(old_set) ^ set(new_set))
    rows_by_digest = {
        name: diff_digests(name, old_set[name], new_set[name],
                           tol=tol, gate=gate, min_ms=min_ms)
        for name in common}
    report = render_report(names[0], names[1], rows_by_digest,
                           only=only, top=top)
    regressed = any(row.regressed
                    for rows in rows_by_digest.values()
                    for row in rows)
    return (EXIT_REGRESSED if regressed else EXIT_OK), report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.experiments perf-diff``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments perf-diff",
        description="Compare the profile digests of two runs and "
                    "localize the worst regressed span.  Accepts "
                    "PROF_*.json exports, BENCH_*.json manifests, "
                    "JSONL ledgers, or bare digest files.  Exits 0 "
                    "when clean, 1 on a gated regression, 2 on "
                    "unusable input.")
    parser.add_argument("old", metavar="OLD",
                        help="baseline artifact carrying digests")
    parser.add_argument("new", metavar="NEW",
                        help="candidate artifact carrying digests")
    parser.add_argument("--tol", type=float, default=0.0,
                        metavar="REL",
                        help="relative tolerance for deterministic "
                             "keys (span calls, domain counters; "
                             "gated both directions; default: 0)")
    parser.add_argument("--gate", type=float, default=None,
                        metavar="REL",
                        help="also gate per-span self-time increases "
                             "beyond REL (e.g. 0.5 = +50%%); timing "
                             "is advisory-only without this flag")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        metavar="MS",
                        help="ignore --gate for spans whose new self "
                             "time is below MS milliseconds "
                             "(default: 5)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="timing rows to print per digest "
                             "(default: 10)")
    args = parser.parse_args(argv)
    if args.tol < 0 or args.min_ms < 0 \
            or (args.gate is not None and args.gate < 0):
        print("error: --tol/--gate/--min-ms must be >= 0",
              file=sys.stderr)
        return EXIT_ERROR
    try:
        old_set = load_profile_set(args.old)
        new_set = load_profile_set(args.new)
        code, report = diff_profile_sets(
            old_set, new_set, tol=args.tol, gate=args.gate,
            min_ms=args.min_ms, names=(args.old, args.new),
            top=args.top)
    except (OSError, ValueError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(report)
    return code


if __name__ == "__main__":
    sys.exit(main())
