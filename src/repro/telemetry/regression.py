"""Benchmark-regression tracking: diff two run ledgers and gate CI.

``bench-diff`` compares the manifests of an *old* (baseline) and *new*
(candidate) ledger or ``BENCH_*.json`` snapshot and reports, per run
name and algorithm, the delta of every headline metric and of the
wall-clock measurements (per-phase seconds, ``runtime_s``, peak RSS).

Two tolerance regimes apply, following the determinism convention of
:mod:`repro.telemetry.ledger`:

* **deterministic metrics** (total reward, latency, admission counts)
  are a pure function of config + seeds, so any relative delta beyond
  ``metric_tol`` - in either direction - **gates** (a reward *increase*
  still means the reproduction changed and the baseline is stale);
* **wall-clock quantities** legitimately vary between machines and
  runs, so they are **advisory** by default and gate only when
  explicitly requested (``gate_wall=True`` / ``--gate-wall``), against
  the looser ``wall_tol``, and only in the slower direction.

Exit codes of the CLI (``python -m repro.experiments bench-diff``):
0 = within tolerance, 1 = regression, 2 = unusable inputs.
"""

from __future__ import annotations

import argparse
import fnmatch
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .ledger import (WALL_CLOCK_METRICS, RunManifest, latest_by_name,
                     load_manifests)

#: Default relative tolerance for deterministic metrics.
DEFAULT_METRIC_TOL = 1e-9
#: Default relative tolerance for wall-clock quantities (when gated).
DEFAULT_WALL_TOL = 0.25

#: Denominator floor so deltas against ~0 baselines stay finite.
_EPS = 1e-12


@dataclass(frozen=True)
class Delta:
    """One compared quantity of one run name.

    Attributes:
        run: manifest name the quantity belongs to.
        key: ``"<algorithm>.<metric>"`` or ``"phase.<name>"`` etc.
        old: baseline value.
        new: candidate value.
        wall_clock: True for advisory wall-clock quantities.
        regressed: True when the delta exceeded its tolerance gate.
    """

    run: str
    key: str
    old: float
    new: float
    wall_clock: bool
    regressed: bool

    @property
    def abs_delta(self) -> float:
        """``new - old``."""
        return self.new - self.old

    @property
    def rel_delta(self) -> float:
        """``(new - old) / max(|old|, eps)``."""
        return self.abs_delta / max(abs(self.old), _EPS)


@dataclass
class DiffReport:
    """Everything ``bench-diff`` found between two ledgers."""

    deltas: List[Delta] = field(default_factory=list)
    #: Run names / metric keys present on only one side (advisory).
    missing: List[str] = field(default_factory=list)
    #: Run names compared.
    compared_runs: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        """The deltas that exceeded their gate."""
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        """True when something was compared and nothing regressed."""
        return bool(self.compared_runs) and not self.regressions

    def render(self) -> str:
        """The human-readable diff report.

        Deterministic metrics print in key order; the advisory
        wall-clock block after them is sorted by relative magnitude
        (largest ``|rel_delta|`` first, key as tiebreak) so the
        biggest timing shift is always the first ``~`` line - the one
        worth pasting into ``perf-diff`` for span-level attribution.
        """
        if not self.compared_runs:
            return "bench-diff: no common run names to compare"
        lines: List[str] = []
        for run in self.compared_runs:
            lines.append(f"run {run!r}:")
            mine = [d for d in self.deltas if d.run == run]
            rows = ([d for d in mine if not d.wall_clock]
                    + sorted((d for d in mine if d.wall_clock),
                             key=lambda d: (-abs(d.rel_delta), d.key)))
            width = max((len(d.key) for d in rows), default=3)
            for d in rows:
                mark = "REGRESSION" if d.regressed else (
                    "~" if d.wall_clock else "ok")
                lines.append(
                    f"  {d.key.ljust(width)}  {d.old:>14.6g} -> "
                    f"{d.new:>14.6g}  ({d.rel_delta:+8.2%})  {mark}")
            if not rows:
                lines.append("  (no overlapping quantities)")
        for item in self.missing:
            lines.append(f"  only on one side: {item}")
        n_wall = sum(1 for d in self.deltas if d.wall_clock)
        lines.append(
            f"compared {len(self.compared_runs)} run(s), "
            f"{len(self.deltas) - n_wall} metric / {n_wall} wall-clock "
            f"quantities; {len(self.regressions)} regression(s)")
        return "\n".join(lines)


def _flatten(manifest: RunManifest
             ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Split one manifest into (deterministic, wall-clock) flat maps."""
    metric: Dict[str, float] = {}
    wall: Dict[str, float] = {}
    for algo, row in manifest.metrics.items():
        for name, value in row.items():
            target = wall if name in WALL_CLOCK_METRICS else metric
            target[f"{algo}.{name}"] = float(value)
    for phase, seconds in manifest.phases.items():
        wall[f"phase.{phase}"] = float(seconds)
    if manifest.peak_rss_kb is not None:
        wall["peak_rss_kb"] = float(manifest.peak_rss_kb)
    return metric, wall


def diff_manifests(old: RunManifest, new: RunManifest,
                   metric_tol: float = DEFAULT_METRIC_TOL,
                   wall_tol: float = DEFAULT_WALL_TOL,
                   gate_wall: bool = False,
                   wall_keys: Optional[Sequence[str]] = None,
                   report: Optional[DiffReport] = None) -> DiffReport:
    """Compare two manifests of the same run name.

    Deterministic metrics gate on ``|rel delta| > metric_tol`` (both
    directions - any drift means the baseline is stale).  Wall-clock
    quantities gate only with ``gate_wall`` and only on slowdowns
    beyond ``wall_tol``; ``wall_keys`` (fnmatch patterns against the
    flattened key, e.g. ``"Appro.runtime_s"`` or ``"*.runtime_s"``)
    restricts the gate to matching quantities so a stable hot path can
    be pinned without gating every machine-dependent number.
    """
    if metric_tol < 0 or wall_tol < 0:
        raise ConfigurationError(
            f"tolerances must be >= 0, got {metric_tol}/{wall_tol}")
    out = report if report is not None else DiffReport()
    out.compared_runs.append(new.name)
    old_metric, old_wall = _flatten(old)
    new_metric, new_wall = _flatten(new)
    for key in sorted(set(old_metric) | set(new_metric)):
        if key not in old_metric or key not in new_metric:
            out.missing.append(f"{new.name}: {key}")
            continue
        a, b = old_metric[key], new_metric[key]
        rel = (b - a) / max(abs(a), _EPS)
        out.deltas.append(Delta(run=new.name, key=key, old=a, new=b,
                                wall_clock=False,
                                regressed=abs(rel) > metric_tol))
    for key in sorted(set(old_wall) & set(new_wall)):
        a, b = old_wall[key], new_wall[key]
        rel = (b - a) / max(abs(a), _EPS)
        gated = gate_wall and (
            wall_keys is None
            or any(fnmatch.fnmatchcase(key, pattern)
                   for pattern in wall_keys))
        out.deltas.append(Delta(run=new.name, key=key, old=a, new=b,
                                wall_clock=True,
                                regressed=gated and rel > wall_tol))
    return out


def diff_ledgers(old: Sequence[RunManifest],
                 new: Sequence[RunManifest],
                 metric_tol: float = DEFAULT_METRIC_TOL,
                 wall_tol: float = DEFAULT_WALL_TOL,
                 gate_wall: bool = False,
                 wall_keys: Optional[Sequence[str]] = None,
                 name: Optional[str] = None) -> DiffReport:
    """Compare the head manifests of two ledgers, per common run name.

    Args:
        old: baseline manifests (ledger order; last entry per name
            wins).
        new: candidate manifests.
        metric_tol: relative gate for deterministic metrics.
        wall_tol: relative gate for wall-clock (when ``gate_wall``).
        gate_wall: also gate on wall-clock slowdowns.
        wall_keys: fnmatch patterns restricting which wall-clock keys
            the gate applies to (all when None).
        name: restrict the comparison to one run name.
    """
    old_by = latest_by_name(old)
    new_by = latest_by_name(new)
    if name is not None:
        old_by = {k: v for k, v in old_by.items() if k == name}
        new_by = {k: v for k, v in new_by.items() if k == name}
    report = DiffReport()
    for run in sorted(set(old_by) | set(new_by)):
        if run not in old_by or run not in new_by:
            report.missing.append(f"run {run!r}")
            continue
        diff_manifests(old_by[run], new_by[run], metric_tol=metric_tol,
                       wall_tol=wall_tol, gate_wall=gate_wall,
                       wall_keys=wall_keys, report=report)
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench-diff",
        description="Compare two run ledgers / BENCH_*.json snapshots "
                    "and exit non-zero on regression.")
    parser.add_argument("old", help="baseline ledger or BENCH file")
    parser.add_argument("new", help="candidate ledger or BENCH file")
    parser.add_argument("--tol", type=float,
                        default=DEFAULT_METRIC_TOL, metavar="REL",
                        help="relative tolerance for deterministic "
                             "metrics (default: exact up to float "
                             "noise)")
    parser.add_argument("--wall-tol", type=float,
                        default=DEFAULT_WALL_TOL, metavar="REL",
                        help="relative slowdown tolerated on "
                             "wall-clock quantities when gated "
                             f"(default {DEFAULT_WALL_TOL})")
    parser.add_argument("--gate-wall", action="store_true",
                        help="fail on wall-clock slowdowns too "
                             "(advisory-only by default)")
    parser.add_argument("--gate-wall-keys", default=None,
                        metavar="PATTERNS",
                        help="comma-separated fnmatch patterns "
                             "limiting the wall-clock gate to matching "
                             "keys (e.g. 'Appro.runtime_s' or "
                             "'*.runtime_s'); implies --gate-wall")
    parser.add_argument("--name", default=None, metavar="RUN",
                        help="compare only this run name")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    wall_keys = None
    if args.gate_wall_keys:
        wall_keys = [pattern.strip()
                     for pattern in args.gate_wall_keys.split(",")
                     if pattern.strip()]
    try:
        old = load_manifests(args.old)
        new = load_manifests(args.new)
        report = diff_ledgers(old, new, metric_tol=args.tol,
                              wall_tol=args.wall_tol,
                              gate_wall=args.gate_wall or bool(wall_keys),
                              wall_keys=wall_keys,
                              name=args.name)
    except (OSError, ConfigurationError) as error:
        print(f"bench-diff: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if not report.compared_runs:
        return 2
    return 1 if report.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
