"""Experiment configuration with the paper's default parameters.

Section VI-A of the paper fixes the simulation defaults; this module
captures them in a single validated dataclass so every algorithm,
simulator, and benchmark shares one source of truth.

Paper defaults (Section VI-A):

* 20 base stations, GT-ITM style topology.
* Computing capacity per station drawn from [3000, 3600] MHz.
* Resource slot size ``C_l`` = 1000 MHz.
* Data rate of each request drawn from [30, 50] MB/s; 3-5 tasks per
  request (the four-stage AR pipeline of [5] by default).
* ``C_unit`` = 20 MHz per MB/s of stream rate.
* Maximum response delay 200 ms; time slot length 0.05 s.
* Reward per unit data rate in [12, 15] dollars.
* Up to 150 requests by default; figures sweep 100-300.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the MEC network substrate.

    Attributes:
        num_base_stations: number of 5G base stations ``|BS|``.
        capacity_range_mhz: uniform range for per-station computing
            capacity ``C(bs_i)``.
        slot_size_mhz: resource-slot capacity ``C_l``.
        waxman_alpha: Waxman model edge-probability scale (GT-ITM uses
            the Waxman model for flat random graphs).
        waxman_beta: Waxman model distance decay.
        link_delay_range_ms: uniform range for the per-link transmission
            delay of one ``rho_unit`` of data.
    """

    num_base_stations: int = 20
    capacity_range_mhz: Tuple[float, float] = (3000.0, 3600.0)
    slot_size_mhz: float = 1000.0
    waxman_alpha: float = 0.6
    waxman_beta: float = 0.4
    link_delay_range_ms: Tuple[float, float] = (2.0, 5.0)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if self.num_base_stations < 1:
            raise ConfigurationError(
                f"need at least one base station, got {self.num_base_stations}")
        lo, hi = self.capacity_range_mhz
        if not 0 < lo <= hi:
            raise ConfigurationError(
                f"invalid capacity range {self.capacity_range_mhz}")
        if self.slot_size_mhz <= 0:
            raise ConfigurationError(
                f"slot size must be positive, got {self.slot_size_mhz}")
        if self.slot_size_mhz > hi:
            raise ConfigurationError(
                "slot size exceeds the maximum station capacity; every "
                "station must contain at least one resource slot")
        if not 0 < self.waxman_alpha <= 1 or not 0 < self.waxman_beta <= 1:
            raise ConfigurationError(
                "Waxman parameters must lie in (0, 1]")
        dlo, dhi = self.link_delay_range_ms
        if not 0 <= dlo <= dhi:
            raise ConfigurationError(
                f"invalid link delay range {self.link_delay_range_ms}")


@dataclass(frozen=True)
class RequestConfig:
    """Parameters of the AR request workload.

    Attributes:
        num_requests: default workload size ``|R|``.
        data_rate_range_mbps: support of the data-rate distribution
            (MB/s), paper default [30, 50].
        num_rate_levels: size of the discrete set ``DR`` of possible
            data rates.
        rate_decay: geometric decay factor of the probability of larger
            data rates ("the probability of requests with large data
            rates is usually small", Section IV-A).
        tasks_range: (min, max) number of pipeline tasks per request.
        c_unit_mhz_per_mbps: ``C_unit`` - MHz consumed per MB/s.
        reward_unit_range: per-request unit price range ($ per MB/s).
        deadline_ms: latency requirement ``D_hat`` (200 ms).
        proc_delay_range_ms: uniform range for the per-station delay of
            processing one ``rho_unit`` by one task.
        stream_duration_slots: how many time slots a request's stream
            lasts in the online (preemptive) setting.
    """

    num_requests: int = 150
    data_rate_range_mbps: Tuple[float, float] = (30.0, 50.0)
    num_rate_levels: int = 5
    rate_decay: float = 0.6
    tasks_range: Tuple[int, int] = (3, 5)
    c_unit_mhz_per_mbps: float = 20.0
    reward_unit_range: Tuple[float, float] = (12.0, 15.0)
    deadline_ms: float = 200.0
    proc_delay_range_ms: Tuple[float, float] = (5.0, 15.0)
    stream_duration_slots: int = 40

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if self.num_requests < 0:
            raise ConfigurationError(
                f"num_requests must be >= 0, got {self.num_requests}")
        lo, hi = self.data_rate_range_mbps
        if not 0 < lo <= hi:
            raise ConfigurationError(
                f"invalid data rate range {self.data_rate_range_mbps}")
        if self.num_rate_levels < 1:
            raise ConfigurationError(
                f"need at least one rate level, got {self.num_rate_levels}")
        if not 0 < self.rate_decay <= 1:
            raise ConfigurationError(
                f"rate_decay must lie in (0, 1], got {self.rate_decay}")
        tlo, thi = self.tasks_range
        if not 1 <= tlo <= thi:
            raise ConfigurationError(f"invalid tasks range {self.tasks_range}")
        if self.c_unit_mhz_per_mbps <= 0:
            raise ConfigurationError(
                f"C_unit must be positive, got {self.c_unit_mhz_per_mbps}")
        rlo, rhi = self.reward_unit_range
        if not 0 <= rlo <= rhi:
            raise ConfigurationError(
                f"invalid reward range {self.reward_unit_range}")
        if self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline_ms}")
        plo, phi = self.proc_delay_range_ms
        if not 0 <= plo <= phi:
            raise ConfigurationError(
                f"invalid processing delay range {self.proc_delay_range_ms}")
        if self.stream_duration_slots < 1:
            raise ConfigurationError(
                "stream_duration_slots must be >= 1, got "
                f"{self.stream_duration_slots}")


@dataclass(frozen=True)
class OnlineConfig:
    """Parameters of the dynamic (preemptive) setting and its bandit.

    Attributes:
        horizon_slots: monitoring period ``T`` in time slots.
        slot_length_ms: time slot length (0.05 s = 50 ms).
        threshold_range_mhz: range ``[C^th_min, C^th_max]`` of the
            minimum per-request resource share.
        num_arms: ``kappa`` - number of discretized threshold arms.
        confidence_scale: multiplier inside the UCB/LCB confidence
            radius ``r_t(a) = scale * sqrt(2 log T / n_a)``.
    """

    horizon_slots: int = 100
    slot_length_ms: float = 50.0
    threshold_range_mhz: Tuple[float, float] = (200.0, 1000.0)
    num_arms: int = 9
    confidence_scale: float = 1.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent values."""
        if self.horizon_slots < 1:
            raise ConfigurationError(
                f"horizon must be >= 1 slot, got {self.horizon_slots}")
        if self.slot_length_ms <= 0:
            raise ConfigurationError(
                f"slot length must be positive, got {self.slot_length_ms}")
        lo, hi = self.threshold_range_mhz
        if not 0 < lo <= hi:
            raise ConfigurationError(
                f"invalid threshold range {self.threshold_range_mhz}")
        if self.num_arms < 1:
            raise ConfigurationError(
                f"need at least one arm, got {self.num_arms}")
        if self.confidence_scale <= 0:
            raise ConfigurationError(
                "confidence_scale must be positive, got "
                f"{self.confidence_scale}")


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration bundling all substrates.

    Use :func:`paper_default_config` for the Section VI-A defaults, and
    :meth:`SimulationConfig.with_overrides` (or :func:`dataclasses.replace`
    on the sub-configs) to build sweep variants.
    """

    network: NetworkConfig = field(default_factory=NetworkConfig)
    requests: RequestConfig = field(default_factory=RequestConfig)
    online: OnlineConfig = field(default_factory=OnlineConfig)
    seed: int = 0

    def validate(self) -> "SimulationConfig":
        """Validate all sub-configs and return self for chaining."""
        self.network.validate()
        self.requests.validate()
        self.online.validate()
        return self

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """Return a copy with top-level fields replaced.

        Nested overrides use dotted helpers::

            cfg.with_overrides(network=replace(cfg.network,
                                               num_base_stations=50))
        """
        return replace(self, **kwargs).validate()


def paper_default_config(seed: int = 0) -> SimulationConfig:
    """The Section VI-A default parameter set, validated."""
    return SimulationConfig(seed=seed).validate()
