"""Deterministic checkpoint persistence for the admission service.

A checkpoint freezes everything the service needs to continue a run as
if it had never stopped: the engine's queues and realization RNG, the
policy's learning state (bandit, warm-start caches), the arrival
stream's position, the decision journal's cursor, and the service's
cumulative counters.  The proof obligation - enforced by the property
tests and the CI smoke job - is *journal byte-identity*: kill the
service at any checkpointed slot, resume from disk, and the decision
journal of the resumed run is byte-for-byte the journal of an
uninterrupted run (``trace-diff`` exit 0).

Files are written atomically (temp file + ``os.replace``) so a crash
mid-checkpoint leaves the previous checkpoint intact.  The payload is a
pickle of plain dataclasses, numpy generator states, and the solver
workspace objects - everything the repository already keeps
deterministic.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..exceptions import ConfigurationError

#: Format tag stored in every checkpoint; bumped on layout changes so a
#: stale file fails loudly instead of resuming garbage.  /2 added the
#: ``metrics_state`` field (PR 8): resumed services continue their
#: metric series instead of restarting them from zero.
CHECKPOINT_SCHEMA = "repro.service-checkpoint/2"


@dataclass
class JournalCursor:
    """Where the decision journal stood when the checkpoint was cut.

    Attributes:
        events_recorded: events recorded so far (including flushed).
        byte_position: length of the journal stream file in bytes.  A
            resumed service truncates the file back to exactly this
            offset before appending, discarding any events the killed
            run journaled past its last checkpoint.
    """

    events_recorded: int = 0
    byte_position: int = 0


@dataclass
class ServiceCheckpoint:
    """One frozen service state (see the module docstring).

    Attributes:
        config: the :class:`~repro.service.loop.ServiceConfig` the run
            was started with - a resume rebuilds the whole runtime from
            it, then overwrites the mutable state below.
        slot: the last fully executed slot; the resumed run continues
            at ``slot + 1``.
        engine_state: :meth:`OnlineEngine.export_state` payload.
        policy_state: the policy's ``export_state()`` payload (None for
            stateless policies like the greedy baseline).
        stream_state: :meth:`PoissonArrivalStream.export_state` payload.
        journal: the decision journal's cursor.
        counters: the service's cumulative metric counters.
        metrics_state: :meth:`MetricsRegistry.export_state` payload
            (None when the run used the null registry), restored on
            resume so live series are continuous across the kill.
    """

    config: Any
    slot: int
    engine_state: Dict[str, Any]
    policy_state: Optional[Dict[str, Any]]
    stream_state: Dict[str, Any]
    journal: JournalCursor
    counters: Dict[str, float] = field(default_factory=dict)
    metrics_state: Optional[Dict[str, Any]] = None
    schema: str = CHECKPOINT_SCHEMA


def write_checkpoint(path: str, checkpoint: ServiceCheckpoint) -> str:
    """Atomically persist a checkpoint; returns the path written.

    The temp file lives next to the target so ``os.replace`` stays on
    one filesystem (rename atomicity).
    """
    if checkpoint.schema != CHECKPOINT_SCHEMA:
        raise ConfigurationError(
            f"checkpoint schema mismatch: {checkpoint.schema!r}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(path: str) -> ServiceCheckpoint:
    """Load a checkpoint written by :func:`write_checkpoint`.

    Raises:
        ConfigurationError: when the file is missing, unreadable, or
            carries a different schema tag.
    """
    if not os.path.exists(path):
        raise ConfigurationError(f"no checkpoint at {path}")
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError,
            AttributeError) as error:
        raise ConfigurationError(
            f"unreadable checkpoint {path}: {error}") from error
    if not isinstance(checkpoint, ServiceCheckpoint):
        raise ConfigurationError(
            f"{path} does not contain a ServiceCheckpoint")
    if checkpoint.schema != CHECKPOINT_SCHEMA:
        raise ConfigurationError(
            f"{path}: schema {checkpoint.schema!r} != "
            f"{CHECKPOINT_SCHEMA!r} (stale checkpoint format)")
    return checkpoint


def truncate_journal(path: str, byte_position: int) -> None:
    """Cut a journal stream file back to a checkpoint's byte cursor.

    A killed service may have flushed events past its last checkpoint;
    those lines never happened as far as the resumed timeline is
    concerned and are discarded here.  Truncating to a position beyond
    the current size is a hard error (the journal and checkpoint
    disagree about history).
    """
    if byte_position < 0:
        raise ConfigurationError(
            f"byte_position must be >= 0, got {byte_position}")
    size = os.path.getsize(path)
    if byte_position > size:
        raise ConfigurationError(
            f"journal {path} is {size} bytes but the checkpoint's "
            f"cursor is {byte_position} - the journal was truncated or "
            f"replaced since the checkpoint was written")
    if byte_position != size:
        os.truncate(path, byte_position)
