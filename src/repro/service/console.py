"""Terminal ops console for a running admission service.

``python -m repro.service status`` fetches one snapshot from a
:class:`~repro.service.http.MetricsEndpoint` and prints it;
``python -m repro.service watch`` polls it on an interval and redraws,
top(1)-style.  Both talk plain HTTP (the endpoint's
``/metrics?format=json`` payload) through :mod:`urllib` - the console
can run on any machine that can reach the service, and needs nothing
installed beyond the standard library.

Like :mod:`repro.service.http`, this is exposition-layer code: it
reads the wall clock to compute scrape-to-scrape rates and to pace the
watch loop, and is DET001-allowlisted for it.  Nothing here can touch
journals, checkpoints, or the service's decision path.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

#: Counters rendered as per-second rates in watch mode.
_RATE_KEYS = ("arrivals", "completed", "shed", "deferred", "dropped")


def fetch_status(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET the endpoint's JSON payload.

    Args:
        url: endpoint base URL (``http://host:port``) or a full
            ``/metrics`` URL.

    Raises:
        ConnectionError: the endpoint is unreachable or returned
            malformed JSON.
    """
    target = url.rstrip("/")
    if not target.endswith("/metrics"):
        target += "/metrics"
    target += "?format=json"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ConnectionError(
            f"cannot scrape {target}: {error}") from error


def render_status(payload: Dict[str, Any],
                  previous: Optional[Dict[str, Any]] = None) -> str:
    """The console frame for one scrape payload.

    With a ``previous`` payload, counter deltas divided by the scrape
    interval become live per-second rates; without one the frame shows
    cumulative totals only.
    """
    status = payload.get("status", {})
    metrics = payload.get("metrics", {})
    counters = status.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    lines = []
    done = " (done)" if status.get("done") else ""
    lines.append(f"repro.service :: policy={status.get('policy')} "
                 f"slot={status.get('slot')}{done}")
    pending = status.get("pending", 0)
    limit = status.get("queue_limit", 0)
    fill = f"{100.0 * pending / limit:.0f}%" if limit else "n/a"
    lines.append(f"queue    {pending}/{limit} ({fill} full), "
                 f"active={status.get('active', 0)}")
    last_ckpt = status.get("last_checkpoint_slot")
    every = status.get("checkpoint_every")
    if every is not None:
        where = "never" if last_ckpt is None else f"slot {last_ckpt}"
        lines.append(f"ckpt     {where} (every {every} slots)")

    rates = _rates(payload, previous)
    row = []
    for key in _RATE_KEYS:
        total = counters.get(key, 0.0)
        if rates is not None:
            row.append(f"{key}={total:.0f} ({rates.get(key, 0.0):.1f}/s)")
        else:
            row.append(f"{key}={total:.0f}")
    lines.append("totals   " + "  ".join(row))
    lines.append(f"reward   {counters.get('reward', 0.0):.2f} over "
                 f"{counters.get('slots', 0.0):.0f} slots")

    latency = (histograms.get("service_slot_latency_seconds")
               or status.get("slot_latency"))
    if latency and latency.get("count"):
        lines.append(
            "latency  p50={:.2f}ms p95={:.2f}ms p99={:.2f}ms "
            "(n={})".format(1000.0 * latency.get("p50", 0.0),
                            1000.0 * latency.get("p95", 0.0),
                            1000.0 * latency.get("p99", 0.0),
                            latency.get("count", 0)))

    alloc_current = gauges.get("service_alloc_current_kb")
    alloc_peak = gauges.get("service_alloc_peak_kb")
    if alloc_current is not None or alloc_peak is not None:
        lines.append(
            "alloc    current={:.0f}KiB peak={:.0f}KiB "
            "(tracemalloc watermark)".format(alloc_current or 0.0,
                                             alloc_peak or 0.0))

    bandit = {name: value for name, value in sorted(gauges.items())
              if name.startswith("bandit_")}
    if bandit:
        lines.append("bandit   " + "  ".join(
            f"{name[len('bandit_'):]}={value:.3g}"
            for name, value in bandit.items()))
    return "\n".join(lines)


def _rates(payload: Dict[str, Any],
           previous: Optional[Dict[str, Any]]
           ) -> Optional[Dict[str, float]]:
    if previous is None:
        return None
    elapsed = (payload.get("scraped_unix", 0.0)
               - previous.get("scraped_unix", 0.0))
    if elapsed <= 0:
        return None
    now = payload.get("status", {}).get("counters", {})
    then = previous.get("status", {}).get("counters", {})
    return {key: (now.get(key, 0.0) - then.get(key, 0.0)) / elapsed
            for key in _RATE_KEYS}


def run_status(url: str, timeout: float = 5.0) -> int:
    """One-shot console frame; exit code 0, or 2 when unreachable."""
    try:
        payload = fetch_status(url, timeout=timeout)
    except ConnectionError as error:
        print(error)
        return 2
    print(render_status(payload))
    return 0


def run_watch(url: str, interval: float = 2.0,
              iterations: Optional[int] = None,
              timeout: float = 5.0) -> int:
    """Poll and redraw until interrupted (or ``iterations`` frames).

    Keeps polling through transient scrape failures (the service may
    simply be between ticks of a heavy slot); exits 0 on Ctrl-C, 2
    only when the very first scrape fails.
    """
    previous: Optional[Dict[str, Any]] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                payload = fetch_status(url, timeout=timeout)
            except ConnectionError as error:
                if previous is None:
                    print(error)
                    return 2
                payload = None
            if payload is not None:
                frame = render_status(payload, previous)
                # ANSI clear + home, then the frame - a flicker-free
                # redraw on any VT100-compatible terminal.
                print("\x1b[2J\x1b[H" + frame, flush=True)
                if payload.get("status", {}).get("done"):
                    return 0
                previous = payload
            frames += 1
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
