"""CLI for the streaming admission service.

Usage::

    # Sustained-throughput benchmark, manifest to BENCH_service.json:
    python -m repro.service loadgen --arrivals 500000 --rate 32 \
        --bench BENCH_service.json

    # Journaled + checkpointed run, killed mid-flight:
    python -m repro.service loadgen --arrivals 50000 --rate 16 \
        --journal run.jsonl --checkpoint run.ckpt \
        --checkpoint-every 200 --kill-at-slot 1500

    # Resume the killed run from its checkpoint:
    python -m repro.service resume --checkpoint run.ckpt

    # Byte-identity gate against an uninterrupted baseline:
    python -m repro.experiments trace-diff baseline.jsonl run.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .loadgen import run_loadgen, run_resume


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived streaming admission service: load "
                    "generation, checkpointing, and crash/resume.")
    sub = parser.add_subparsers(dest="command", required=True)

    load = sub.add_parser(
        "loadgen",
        help="replay a synthetic Poisson arrival stream and report "
             "throughput/latency/RSS")
    load.add_argument("--arrivals", type=int, default=50_000,
                      help="total requests to generate (default 50000)")
    load.add_argument("--rate", type=float, default=8.0,
                      help="mean arrivals per slot (default 8)")
    load.add_argument("--policy", default="greedy",
                      choices=("greedy", "dynamicrr", "random"),
                      help="admission policy (default greedy)")
    load.add_argument("--seed", type=int, default=0,
                      help="root seed (default 0)")
    load.add_argument("--queue-limit", type=int, default=256,
                      help="pending-queue bound; overflow is SHED "
                           "(default 256)")
    load.add_argument("--journal", default=None, metavar="PATH",
                      help="stream the decision journal to this JSONL "
                           "file")
    load.add_argument("--flush-every", type=int, default=1024,
                      help="journal flush chunk in events (default "
                           "1024; any value yields identical bytes)")
    load.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="write checkpoints to this file")
    load.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="SLOTS",
                      help="checkpoint cadence in slots")
    load.add_argument("--kill-at-slot", type=int, default=None,
                      metavar="SLOT",
                      help="simulate a crash after this slot (nothing "
                           "flushed or finalized)")
    load.add_argument("--bench", default=None, metavar="PATH",
                      help="write a BENCH_<name>.json run manifest")
    load.add_argument("--name", default="service",
                      help="manifest name (default 'service')")

    res = sub.add_parser(
        "resume",
        help="restore a killed service from its checkpoint and run it "
             "to drain")
    res.add_argument("--checkpoint", required=True, metavar="PATH",
                     help="checkpoint file written by a loadgen run")
    res.add_argument("--bench", default=None, metavar="PATH",
                     help="write a BENCH_<name>.json run manifest")
    res.add_argument("--name", default="service",
                     help="manifest name (default 'service')")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "loadgen":
        summary = run_loadgen(
            arrivals=args.arrivals, rate=args.rate, policy=args.policy,
            seed=args.seed, queue_limit=args.queue_limit,
            journal_path=args.journal,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            flush_every=args.flush_every,
            kill_at_slot=args.kill_at_slot,
            bench_path=args.bench, name=args.name)
    else:
        summary = run_resume(args.checkpoint, bench_path=args.bench,
                             name=args.name)
    print(json.dumps(summary, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
