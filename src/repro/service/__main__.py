"""CLI for the streaming admission service.

Usage::

    # Sustained-throughput benchmark, manifest to BENCH_service.json:
    python -m repro.service loadgen --arrivals 500000 --rate 32 \
        --bench BENCH_service.json

    # Journaled + checkpointed run, killed mid-flight:
    python -m repro.service loadgen --arrivals 50000 --rate 16 \
        --journal run.jsonl --checkpoint run.ckpt \
        --checkpoint-every 200 --kill-at-slot 1500

    # Resume the killed run from its checkpoint:
    python -m repro.service resume --checkpoint run.ckpt

    # Byte-identity gate against an uninterrupted baseline:
    python -m repro.experiments trace-diff baseline.jsonl run.jsonl

    # Scrapeable run + live terminal console from another shell:
    python -m repro.service loadgen --arrivals 500000 --rate 32 \
        --metrics-port 9178
    python -m repro.service watch --url http://127.0.0.1:9178
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .console import run_status, run_watch
from .loadgen import run_loadgen, run_resume


def _add_profile_flags(sub: argparse.ArgumentParser) -> None:
    """Attach the shared ``--profile*`` knobs to a drive subcommand."""
    sub.add_argument("--profile", action="store_true",
                     help="capture a span-attribution digest + cProfile "
                          "stats for the serve loop (digest lands in the "
                          "summary and the bench manifest's profiles)")
    sub.add_argument("--profile-out", default=None, metavar="PATH",
                     help="write collapsed stacks (flamegraph.pl / "
                          "speedscope loadable) here; implies --profile")
    sub.add_argument("--profile-mem", action="store_true",
                     help="trace allocations with tracemalloc: the serve "
                          "loop publishes service_alloc_{current,peak}_kb "
                          "gauges and the summary gains top allocation "
                          "sites")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived streaming admission service: load "
                    "generation, checkpointing, and crash/resume.")
    sub = parser.add_subparsers(dest="command", required=True)

    load = sub.add_parser(
        "loadgen",
        help="replay a synthetic Poisson arrival stream and report "
             "throughput/latency/RSS")
    load.add_argument("--arrivals", type=int, default=50_000,
                      help="total requests to generate (default 50000)")
    load.add_argument("--rate", type=float, default=8.0,
                      help="mean arrivals per slot (default 8)")
    load.add_argument("--policy", default="greedy",
                      choices=("greedy", "dynamicrr", "random"),
                      help="admission policy (default greedy)")
    load.add_argument("--seed", type=int, default=0,
                      help="root seed (default 0)")
    load.add_argument("--queue-limit", type=int, default=256,
                      help="pending-queue bound; overflow is SHED "
                           "(default 256)")
    load.add_argument("--journal", default=None, metavar="PATH",
                      help="stream the decision journal to this JSONL "
                           "file")
    load.add_argument("--flush-every", type=int, default=1024,
                      help="journal flush chunk in events (default "
                           "1024; any value yields identical bytes)")
    load.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="write checkpoints to this file")
    load.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="SLOTS",
                      help="checkpoint cadence in slots")
    load.add_argument("--kill-at-slot", type=int, default=None,
                      metavar="SLOT",
                      help="simulate a crash after this slot (nothing "
                           "flushed or finalized)")
    load.add_argument("--bench", default=None, metavar="PATH",
                      help="write a BENCH_<name>.json run manifest")
    load.add_argument("--name", default="service",
                      help="manifest name (default 'service')")
    load.add_argument("--metrics-port", type=int, default=None,
                      metavar="PORT",
                      help="serve /metrics, /healthz, /readyz on this "
                           "port while the run drains (0 = pick a free "
                           "port, printed to stderr)")
    load.add_argument("--no-metrics", action="store_true",
                      help="run with the zero-overhead null registry "
                           "instead of a live MetricsRegistry")
    _add_profile_flags(load)

    res = sub.add_parser(
        "resume",
        help="restore a killed service from its checkpoint and run it "
             "to drain")
    res.add_argument("--checkpoint", required=True, metavar="PATH",
                     help="checkpoint file written by a loadgen run")
    res.add_argument("--bench", default=None, metavar="PATH",
                     help="write a BENCH_<name>.json run manifest")
    res.add_argument("--name", default="service",
                     help="manifest name (default 'service')")
    res.add_argument("--metrics-port", type=int, default=None,
                     metavar="PORT",
                     help="serve the scrape endpoint while draining")
    res.add_argument("--no-metrics", action="store_true",
                     help="resume with the null registry (the "
                          "checkpoint's metric series are dropped)")
    _add_profile_flags(res)

    stat = sub.add_parser(
        "status",
        help="print one ops-console frame scraped from a running "
             "service's endpoint")
    stat.add_argument("--url", default="http://127.0.0.1:9178",
                      help="endpoint base URL (default "
                           "http://127.0.0.1:9178)")
    stat.add_argument("--timeout", type=float, default=5.0,
                      help="scrape timeout in seconds (default 5)")

    watch = sub.add_parser(
        "watch",
        help="poll the endpoint and redraw the ops console, "
             "top(1)-style")
    watch.add_argument("--url", default="http://127.0.0.1:9178",
                       help="endpoint base URL (default "
                            "http://127.0.0.1:9178)")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="poll interval in seconds (default 2)")
    watch.add_argument("--iterations", type=int, default=None,
                       help="stop after this many frames (default: "
                            "until Ctrl-C or the service drains)")
    watch.add_argument("--timeout", type=float, default=5.0,
                       help="scrape timeout in seconds (default 5)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "status":
        return run_status(args.url, timeout=args.timeout)
    if args.command == "watch":
        return run_watch(args.url, interval=args.interval,
                         iterations=args.iterations,
                         timeout=args.timeout)
    if args.command == "loadgen":
        summary = run_loadgen(
            arrivals=args.arrivals, rate=args.rate, policy=args.policy,
            seed=args.seed, queue_limit=args.queue_limit,
            journal_path=args.journal,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            flush_every=args.flush_every,
            kill_at_slot=args.kill_at_slot,
            bench_path=args.bench, name=args.name,
            metrics=not args.no_metrics,
            metrics_port=args.metrics_port,
            profile=args.profile, profile_out=args.profile_out,
            profile_mem=args.profile_mem)
    else:
        summary = run_resume(args.checkpoint, bench_path=args.bench,
                             name=args.name,
                             metrics=not args.no_metrics,
                             metrics_port=args.metrics_port,
                             profile=args.profile,
                             profile_out=args.profile_out,
                             profile_mem=args.profile_mem)
    print(json.dumps(summary, sort_keys=True, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
