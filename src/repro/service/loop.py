"""The long-lived streaming admission loop.

:class:`AdmissionService` turns the batch-oriented
:class:`~repro.sim.online_engine.OnlineEngine` into a service: an
unbounded :class:`~repro.requests.arrivals.PoissonArrivalStream` feeds
per-slot batches through a **bounded pending queue**, every ingress
decision (ADMIT into the engine, ADMIT_DEFERRED when the request waits
past its arrival slot, SHED when the queue is full) is journaled as a
first-class event, and the whole mutable state checkpoints to disk at a
deterministic slot cadence.

Determinism contract: all randomness forks from ``config.sim.seed``
via :class:`~repro.rng.RngForks` named children, the engine runs in
``streaming`` mode (flat memory), and checkpoint/restore reproduces the
remaining slots exactly - the decision journal of a killed-and-resumed
run is byte-identical to an uninterrupted run (see
:mod:`repro.service.checkpoint`).

The synchronous core is :meth:`AdmissionService.tick` (one slot);
:meth:`AdmissionService.serve` drives it as an asyncio coroutine,
yielding the event loop between slots (and sleeping the slot cadence in
``realtime`` mode) so a host process can multiplex the service with
other work.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..baselines import GreedyOnline, RandomOnline
from ..config import SimulationConfig
from ..core.dynamic_rr import DynamicRR
from ..core.instance import ProblemInstance
from ..exceptions import ConfigurationError
from ..requests.arrivals import PoissonArrivalStream
from ..requests.generator import RequestGenerator
from ..rng import RngForks
from ..sim.events import Event, EventKind
from ..sim.online_engine import OnlineEngine, SlotOutcome
from ..telemetry.audit import Journal, use_journal
from .checkpoint import (JournalCursor, ServiceCheckpoint,
                         read_checkpoint, truncate_journal,
                         write_checkpoint)

#: Policies the service can run (name -> needs an RNG fork).
SERVICE_POLICIES = ("greedy", "dynamicrr", "random")

#: Cumulative counter keys, in reporting order.
COUNTER_KEYS = ("arrivals", "accepted", "shed", "deferred", "started",
                "completed", "dropped", "reward", "slots")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that defines one service run.

    A checkpoint stores this whole object; a resume rebuilds the
    runtime from it, so every field must stay picklable and
    deterministic.

    Attributes:
        sim: the simulation substrate (network, request parameters,
            seed - the root of every RNG fork).
        horizon_slots: hard upper bound on the slot count (the engine
            clock's horizon; pick generously for "unbounded" runs).
        mean_arrivals_per_slot: Poisson rate of the arrival stream.
        max_arrivals: stop generating after this many requests (None =
            truly unbounded; the service then runs to the horizon).
        policy: one of :data:`SERVICE_POLICIES`.
        queue_limit: bound on the engine's pending queue - arrivals
            beyond it are SHED at ingress (backpressure).
        journal_path: JSONL file for the streaming decision journal
            (None = no journaling, the throughput configuration).
        flush_every: journal flush chunk (bytes-identical for any
            value; only syscall batching changes).
        checkpoint_path: where checkpoints are written (None = never
            checkpoint).
        checkpoint_every: cut a checkpoint after every this many slots.
            The cadence is part of the deterministic timeline: the
            baseline run and a killed run must share it for the
            CHECKPOINT journal events to line up.
        realtime: sleep one slot length between slots in
            :meth:`AdmissionService.serve` (default is virtual time:
            run as fast as the machine allows).
        latency_window: ring-buffer size for per-slot latency samples
            (bounded so memory stays flat).
    """

    sim: SimulationConfig = field(default_factory=SimulationConfig)
    horizon_slots: int = 100_000
    mean_arrivals_per_slot: float = 4.0
    max_arrivals: Optional[int] = None
    policy: str = "greedy"
    queue_limit: int = 256
    journal_path: Optional[str] = None
    flush_every: int = 1024
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None
    realtime: bool = False
    latency_window: int = 65_536

    def validate(self) -> "ServiceConfig":
        """Raise :class:`ConfigurationError` on inconsistent values."""
        self.sim.validate()
        if self.horizon_slots < 1:
            raise ConfigurationError(
                f"horizon must be >= 1 slot, got {self.horizon_slots}")
        if self.mean_arrivals_per_slot <= 0:
            raise ConfigurationError(
                f"mean_arrivals_per_slot must be > 0, got "
                f"{self.mean_arrivals_per_slot}")
        if self.max_arrivals is not None and self.max_arrivals < 0:
            raise ConfigurationError(
                f"max_arrivals must be >= 0, got {self.max_arrivals}")
        if self.policy not in SERVICE_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SERVICE_POLICIES}, got "
                f"{self.policy!r}")
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {self.flush_every}")
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got "
                    f"{self.checkpoint_every}")
            if self.checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every needs a checkpoint_path")
        if self.latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {self.latency_window}")
        return self


@dataclass(frozen=True)
class SlotReport:
    """What one service slot did (the :meth:`AdmissionService.tick`
    result): the engine's outcome plus the ingress decisions the
    service itself made around it."""

    outcome: SlotOutcome
    num_shed: int
    num_deferred: int
    checkpointed: bool


def _make_policy(config: ServiceConfig, forks: RngForks):
    """Build the configured policy with its own named RNG fork."""
    if config.policy == "dynamicrr":
        return DynamicRR(config.sim.online,
                         rng=forks.child("service.policy"))
    if config.policy == "random":
        return RandomOnline(rng=forks.child("service.policy"))
    return GreedyOnline()


class AdmissionService:
    """One streaming admission run (see the module docstring).

    Args:
        config: the run's definition (validated here).

    Use :meth:`resume` to rebuild a service from a checkpoint instead
    of constructing one directly.
    """

    def __init__(self, config: ServiceConfig,
                 _checkpoint: Optional[ServiceCheckpoint] = None) -> None:
        config.validate()
        self.config = config
        forks = RngForks(config.sim.seed)
        self._instance = ProblemInstance.build(config.sim,
                                               seed=config.sim.seed)
        generator = RequestGenerator(config.sim.requests,
                                     self._instance.network,
                                     rng=forks.child("service.requests"))
        self._stream = PoissonArrivalStream(
            generator, config.mean_arrivals_per_slot,
            rng=forks.child("service.counts"),
            limit=config.max_arrivals)
        self._engine = OnlineEngine(
            self._instance, requests=[],
            horizon_slots=config.horizon_slots,
            rng=forks.child("service.engine"),
            streaming=True)
        self._policy = _make_policy(config, forks)
        self._journal: Optional[Journal] = None
        self.counters: Dict[str, float] = {key: 0.0
                                           for key in COUNTER_KEYS}
        #: Per-slot wall-clock latencies (seconds), bounded window.
        self.slot_latencies: Deque[float] = deque(
            maxlen=config.latency_window)
        #: Operational side stream (CHECKPOINT/RESUME markers); never
        #: part of the decision journal.
        self.ops_events: List[Event] = []
        self.done = False
        self._started = False
        if _checkpoint is not None:
            self._restore(_checkpoint)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, checkpoint_path: str) -> "AdmissionService":
        """Rebuild a service from its checkpoint and continue.

        The decision journal file (when configured) is truncated back
        to the checkpoint's byte cursor and reopened in append mode, so
        the continued journal is byte-identical to an uninterrupted
        run's.
        """
        checkpoint = read_checkpoint(checkpoint_path)
        return cls(checkpoint.config, _checkpoint=checkpoint)

    def start(self) -> None:
        """Announce stations and initialize the policy (fresh run)."""
        if self._started:
            return
        self._started = True
        if self.config.journal_path is not None:
            self._journal = Journal(
                stream_path=self.config.journal_path,
                flush_every=self.config.flush_every)
        with use_journal(self._journal):
            self._engine.announce_stations()
            self._policy.begin(self._engine)

    def _restore(self, checkpoint: ServiceCheckpoint) -> None:
        """Install a checkpoint (the :meth:`resume` second half)."""
        self._started = True
        if self.config.journal_path is not None:
            truncate_journal(self.config.journal_path,
                             checkpoint.journal.byte_position)
            self._journal = Journal(
                stream_path=self.config.journal_path,
                flush_every=self.config.flush_every,
                append=True,
                already_recorded=checkpoint.journal.events_recorded)
        # begin() binds the engine and builds fresh learning state;
        # restore_state() then overwrites it with the checkpointed one.
        self._policy.begin(self._engine)
        if checkpoint.policy_state is not None:
            self._policy.restore_state(checkpoint.policy_state)
        self._engine.restore_state(checkpoint.engine_state)
        self._stream.restore_state(checkpoint.stream_state)
        self.counters.update(checkpoint.counters)
        self.ops_events.append(Event(slot=checkpoint.slot,
                                     kind=EventKind.RESUME))

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------
    def tick(self) -> SlotReport:
        """Execute one slot: pull arrivals, shed, step, defer, checkpoint.

        Ingress order is fixed (it is part of the journal's canonical
        byte stream): SHED decisions are journaled before the engine
        steps, ADMIT_DEFERRED after it (a request is deferred when it
        was accepted this slot but the policy left it pending), and the
        CHECKPOINT marker closes the slot.
        """
        if self.done:
            raise ConfigurationError("service already drained; "
                                     "construct a new one to run again")
        if not self._started:
            self.start()
        began = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        slot, batch = self._stream.next_batch()
        self._engine.clock.advance_to(slot)
        with use_journal(self._journal) as journal:
            room = max(0, self.config.queue_limit
                       - self._engine.pending_count())
            accepted = list(batch[:room])
            shed = list(batch[room:])
            if shed and journal.enabled:
                depth = float(self._engine.pending_count()
                              + len(accepted))
                for request in shed:
                    journal.record(Event(
                        slot=slot, kind=EventKind.SHED,
                        request_id=request.request_id, value=depth))
            outcome = self._engine.step(self._policy, slot, accepted)
            deferred = 0
            if accepted:
                still_pending = set(self._engine.pending_ids())
                for request in accepted:
                    if request.request_id in still_pending:
                        deferred += 1
                        if journal.enabled:
                            journal.record(Event(
                                slot=slot,
                                kind=EventKind.ADMIT_DEFERRED,
                                request_id=request.request_id,
                                value=float(outcome.pending_after)))
            # Account before checkpointing so the checkpoint's
            # counters include the slot it closes.
            self._account(outcome, len(shed), deferred)
            checkpointed = self._maybe_checkpoint(slot, journal)
        self.slot_latencies.append(
            time.perf_counter() - began)  # repro: noqa DET001 -- advisory runtime metric
        if self._stream.exhausted and outcome.pending_after == 0 \
                and outcome.active_after == 0:
            self.done = True
        elif slot >= self.config.horizon_slots - 1:
            self.done = True
        return SlotReport(outcome=outcome, num_shed=len(shed),
                          num_deferred=deferred,
                          checkpointed=checkpointed)

    async def serve(self, max_slots: Optional[int] = None) -> int:
        """Drive :meth:`tick` as a coroutine until drained.

        Yields the event loop after every slot (``realtime`` mode
        additionally sleeps one slot length), so the service coexists
        with other coroutines on the same loop.

        Returns:
            Slots processed by this call.
        """
        processed = 0
        while not self.done:
            if max_slots is not None and processed >= max_slots:
                break
            self.tick()
            processed += 1
            if self.config.realtime:
                await asyncio.sleep(self._engine.clock.slot_length_s)
            else:
                await asyncio.sleep(0)
        return processed

    def close(self) -> None:
        """Settle leftovers and flush/close the journal (clean stop).

        A *crash* is the absence of this call: buffered journal events
        past the last checkpoint are lost, which is exactly what the
        resume path's truncation reconciles.
        """
        with use_journal(self._journal):
            if self._engine.pending_count() or self._engine.active_total():
                self._engine.finalize()
        if self._journal is not None:
            self._journal.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, slot: int, journal) -> bool:
        every = self.config.checkpoint_every
        if every is None or (slot + 1) % every != 0:
            return False
        if journal.enabled:
            journal.record(Event(slot=slot, kind=EventKind.CHECKPOINT))
        cursor = JournalCursor()
        if self._journal is not None:
            cursor = JournalCursor(
                events_recorded=self._journal.total_recorded,
                byte_position=self._journal.byte_position())
        policy_state = None
        if hasattr(self._policy, "export_state"):
            policy_state = self._policy.export_state()
        checkpoint = ServiceCheckpoint(
            config=self.config,
            slot=slot,
            engine_state=self._engine.export_state(),
            policy_state=policy_state,
            stream_state=self._stream.export_state(),
            journal=cursor,
            counters=dict(self.counters),
        )
        write_checkpoint(self.config.checkpoint_path, checkpoint)
        self.ops_events.append(Event(slot=slot,
                                     kind=EventKind.CHECKPOINT))
        return True

    def _account(self, outcome: SlotOutcome, num_shed: int,
                 num_deferred: int) -> None:
        counters = self.counters
        counters["arrivals"] += outcome.num_arrivals + num_shed
        counters["accepted"] += outcome.num_arrivals
        counters["shed"] += num_shed
        counters["deferred"] += num_deferred
        counters["started"] += outcome.num_started
        counters["completed"] += outcome.num_completed
        counters["dropped"] += outcome.num_dropped
        counters["reward"] += outcome.slot_reward
        counters["slots"] += 1

    # Introspection -----------------------------------------------------
    @property
    def engine(self) -> OnlineEngine:
        """The underlying engine (live occupancy views)."""
        return self._engine

    @property
    def journal(self) -> Optional[Journal]:
        """The streaming decision journal (None when unjournaled)."""
        return self._journal

    def __repr__(self) -> str:
        return (f"AdmissionService(policy={self.config.policy!r}, "
                f"slots={int(self.counters['slots'])}, "
                f"done={self.done})")
