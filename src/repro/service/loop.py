"""The long-lived streaming admission loop.

:class:`AdmissionService` turns the batch-oriented
:class:`~repro.sim.online_engine.OnlineEngine` into a service: an
unbounded :class:`~repro.requests.arrivals.PoissonArrivalStream` feeds
per-slot batches through a **bounded pending queue**, every ingress
decision (ADMIT into the engine, ADMIT_DEFERRED when the request waits
past its arrival slot, SHED when the queue is full) is journaled as a
first-class event, and the whole mutable state checkpoints to disk at a
deterministic slot cadence.

Determinism contract: all randomness forks from ``config.sim.seed``
via :class:`~repro.rng.RngForks` named children, the engine runs in
``streaming`` mode (flat memory), and checkpoint/restore reproduces the
remaining slots exactly - the decision journal of a killed-and-resumed
run is byte-identical to an uninterrupted run (see
:mod:`repro.service.checkpoint`).

The synchronous core is :meth:`AdmissionService.tick` (one slot);
:meth:`AdmissionService.serve` drives it as an asyncio coroutine,
yielding the event loop between slots (and sleeping the slot cadence in
``realtime`` mode) so a host process can multiplex the service with
other work.
"""

from __future__ import annotations

import asyncio
import time
import tracemalloc
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from ..baselines import GreedyOnline, RandomOnline
from ..config import SimulationConfig
from ..core.dynamic_rr import DynamicRR
from ..core.instance import ProblemInstance
from ..exceptions import ConfigurationError
from ..requests.arrivals import PoissonArrivalStream
from ..requests.generator import RequestGenerator
from ..rng import RngForks
from ..sim.events import Event, EventKind
from ..sim.online_engine import OnlineEngine, SlotOutcome
from ..telemetry.audit import Journal, use_journal
from ..telemetry.metrics import (MetricsRegistry, StreamingHistogram,
                                 get_metrics, use_metrics)
from .checkpoint import (JournalCursor, ServiceCheckpoint,
                         read_checkpoint, truncate_journal,
                         write_checkpoint)

#: Policies the service can run (name -> needs an RNG fork).
SERVICE_POLICIES = ("greedy", "dynamicrr", "random")

#: Cumulative counter keys, in reporting order.
COUNTER_KEYS = ("arrivals", "accepted", "shed", "deferred", "started",
                "completed", "dropped", "reward", "slots")

#: Slot cadence of the allocation-watermark gauges (only published
#: while ``tracemalloc`` is tracing, i.e. under ``--profile-mem``).
_ALLOC_SAMPLE_SLOTS = 64


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that defines one service run.

    A checkpoint stores this whole object; a resume rebuilds the
    runtime from it, so every field must stay picklable and
    deterministic.

    Attributes:
        sim: the simulation substrate (network, request parameters,
            seed - the root of every RNG fork).
        horizon_slots: hard upper bound on the slot count (the engine
            clock's horizon; pick generously for "unbounded" runs).
        mean_arrivals_per_slot: Poisson rate of the arrival stream.
        max_arrivals: stop generating after this many requests (None =
            truly unbounded; the service then runs to the horizon).
        policy: one of :data:`SERVICE_POLICIES`.
        queue_limit: bound on the engine's pending queue - arrivals
            beyond it are SHED at ingress (backpressure).
        journal_path: JSONL file for the streaming decision journal
            (None = no journaling, the throughput configuration).
        flush_every: journal flush chunk (bytes-identical for any
            value; only syscall batching changes).
        checkpoint_path: where checkpoints are written (None = never
            checkpoint).
        checkpoint_every: cut a checkpoint after every this many slots.
            The cadence is part of the deterministic timeline: the
            baseline run and a killed run must share it for the
            CHECKPOINT journal events to line up.
        realtime: sleep one slot length between slots in
            :meth:`AdmissionService.serve` (default is virtual time:
            run as fast as the machine allows).
        metrics_window_slots: sliding-window length (in slots) of the
            service's streaming latency histogram and of lazily
            created registry histograms.
        metrics_snapshot_every: append a METRICS_SNAPSHOT event to the
            ops stream after every this many slots (None = never).
            Ops-side only - the decision journal stays byte-identical
            with or without snapshots.
        ops_journal_path: optional JSONL file for the operational side
            stream (CHECKPOINT / RESUME / METRICS_SNAPSHOT markers).
            Unlike the decision journal it is never truncated on
            resume: it is the service's flight recorder, not part of
            the determinism contract.
    """

    sim: SimulationConfig = field(default_factory=SimulationConfig)
    horizon_slots: int = 100_000
    mean_arrivals_per_slot: float = 4.0
    max_arrivals: Optional[int] = None
    policy: str = "greedy"
    queue_limit: int = 256
    journal_path: Optional[str] = None
    flush_every: int = 1024
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None
    realtime: bool = False
    metrics_window_slots: int = 256
    metrics_snapshot_every: Optional[int] = None
    ops_journal_path: Optional[str] = None

    def validate(self) -> "ServiceConfig":
        """Raise :class:`ConfigurationError` on inconsistent values."""
        self.sim.validate()
        if self.horizon_slots < 1:
            raise ConfigurationError(
                f"horizon must be >= 1 slot, got {self.horizon_slots}")
        if self.mean_arrivals_per_slot <= 0:
            raise ConfigurationError(
                f"mean_arrivals_per_slot must be > 0, got "
                f"{self.mean_arrivals_per_slot}")
        if self.max_arrivals is not None and self.max_arrivals < 0:
            raise ConfigurationError(
                f"max_arrivals must be >= 0, got {self.max_arrivals}")
        if self.policy not in SERVICE_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SERVICE_POLICIES}, got "
                f"{self.policy!r}")
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {self.flush_every}")
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got "
                    f"{self.checkpoint_every}")
            if self.checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every needs a checkpoint_path")
        if self.metrics_window_slots < 1:
            raise ConfigurationError(
                f"metrics_window_slots must be >= 1, got "
                f"{self.metrics_window_slots}")
        if (self.metrics_snapshot_every is not None
                and self.metrics_snapshot_every < 1):
            raise ConfigurationError(
                f"metrics_snapshot_every must be >= 1, got "
                f"{self.metrics_snapshot_every}")
        return self


@dataclass(frozen=True)
class SlotReport:
    """What one service slot did (the :meth:`AdmissionService.tick`
    result): the engine's outcome, the ingress decisions the service
    made around it, and the run's cumulative tallies so far - so
    callers watching the loop never re-derive totals from the journal.
    """

    outcome: SlotOutcome
    num_shed: int
    num_deferred: int
    checkpointed: bool
    #: Cumulative counts including this slot.
    admitted_total: int = 0
    deferred_total: int = 0
    shed_total: int = 0
    dropped_total: int = 0


def _make_policy(config: ServiceConfig, forks: RngForks):
    """Build the configured policy with its own named RNG fork."""
    if config.policy == "dynamicrr":
        return DynamicRR(config.sim.online,
                         rng=forks.child("service.policy"))
    if config.policy == "random":
        return RandomOnline(rng=forks.child("service.policy"))
    return GreedyOnline()


class AdmissionService:
    """One streaming admission run (see the module docstring).

    Args:
        config: the run's definition (validated here).
        registry: the metrics registry instrumentation writes to
            (default: the ambient registry from
            :func:`~repro.telemetry.metrics.get_metrics`, normally the
            no-op null registry).  :meth:`tick` installs it as current
            for the slot, so engine/policy/solver instrumentation all
            land in the same registry.

    Use :meth:`resume` to rebuild a service from a checkpoint instead
    of constructing one directly.
    """

    def __init__(self, config: ServiceConfig,
                 registry: Optional[MetricsRegistry] = None,
                 _checkpoint: Optional[ServiceCheckpoint] = None) -> None:
        config.validate()
        self.config = config
        self._metrics = registry if registry is not None else get_metrics()
        forks = RngForks(config.sim.seed)
        self._instance = ProblemInstance.build(config.sim,
                                               seed=config.sim.seed)
        generator = RequestGenerator(config.sim.requests,
                                     self._instance.network,
                                     rng=forks.child("service.requests"))
        self._stream = PoissonArrivalStream(
            generator, config.mean_arrivals_per_slot,
            rng=forks.child("service.counts"),
            limit=config.max_arrivals)
        self._engine = OnlineEngine(
            self._instance, requests=[],
            horizon_slots=config.horizon_slots,
            rng=forks.child("service.engine"),
            streaming=True)
        self._policy = _make_policy(config, forks)
        self._journal: Optional[Journal] = None
        self._ops_journal: Optional[Journal] = None
        self.counters: Dict[str, float] = {key: 0.0
                                           for key in COUNTER_KEYS}
        #: Per-slot wall-clock latencies (seconds): bounded log-scale
        #: histogram with a slot-keyed sliding window, so p50/p95/p99
        #: stay available at flat memory over unbounded runs.
        self.slot_latency = StreamingHistogram(
            window_slots=config.metrics_window_slots)
        #: Operational side stream (CHECKPOINT/RESUME/METRICS_SNAPSHOT
        #: markers); never part of the decision journal.  Bounded: the
        #: full stream goes to ``config.ops_journal_path`` when set.
        self.ops_events: Deque[Event] = deque(maxlen=4096)
        self.last_checkpoint_slot: Optional[int] = None
        self.done = False
        self._started = False
        if _checkpoint is not None:
            self._restore(_checkpoint)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, checkpoint_path: str,
               registry: Optional[MetricsRegistry] = None,
               ) -> "AdmissionService":
        """Rebuild a service from its checkpoint and continue.

        The decision journal file (when configured) is truncated back
        to the checkpoint's byte cursor and reopened in append mode, so
        the continued journal is byte-identical to an uninterrupted
        run's.  When the checkpoint carries metrics state and
        ``registry`` is a live one, the state is restored into it -
        counters continue from their pre-kill values instead of
        resetting.
        """
        checkpoint = read_checkpoint(checkpoint_path)
        return cls(checkpoint.config, registry=registry,
                   _checkpoint=checkpoint)

    def start(self) -> None:
        """Announce stations and initialize the policy (fresh run)."""
        if self._started:
            return
        self._started = True
        if self.config.journal_path is not None:
            self._journal = Journal(
                stream_path=self.config.journal_path,
                flush_every=self.config.flush_every)
        if self.config.ops_journal_path is not None:
            self._ops_journal = Journal(
                stream_path=self.config.ops_journal_path,
                flush_every=self.config.flush_every)
        with use_journal(self._journal), use_metrics(self._metrics):
            self._engine.announce_stations()
            self._policy.begin(self._engine)

    def _restore(self, checkpoint: ServiceCheckpoint) -> None:
        """Install a checkpoint (the :meth:`resume` second half)."""
        self._started = True
        if self.config.journal_path is not None:
            truncate_journal(self.config.journal_path,
                             checkpoint.journal.byte_position)
            self._journal = Journal(
                stream_path=self.config.journal_path,
                flush_every=self.config.flush_every,
                append=True,
                already_recorded=checkpoint.journal.events_recorded)
        if self.config.ops_journal_path is not None:
            # The ops stream is a flight recorder: append, never
            # truncate - a RESUME marker explains the discontinuity.
            self._ops_journal = Journal(
                stream_path=self.config.ops_journal_path,
                flush_every=self.config.flush_every,
                append=True)
        # begin() binds the engine and builds fresh learning state;
        # restore_state() then overwrites it with the checkpointed one.
        with use_metrics(self._metrics):
            self._policy.begin(self._engine)
        if checkpoint.policy_state is not None:
            self._policy.restore_state(checkpoint.policy_state)
        self._engine.restore_state(checkpoint.engine_state)
        self._stream.restore_state(checkpoint.stream_state)
        self.counters.update(checkpoint.counters)
        self._metrics.restore_state(checkpoint.metrics_state)
        self._metrics.inc("service_resumes_total")
        self.last_checkpoint_slot = checkpoint.slot
        self._ops_record(Event(slot=checkpoint.slot,
                               kind=EventKind.RESUME))

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------
    def tick(self) -> SlotReport:
        """Execute one slot: pull arrivals, shed, step, defer, checkpoint.

        Ingress order is fixed (it is part of the journal's canonical
        byte stream): SHED decisions are journaled before the engine
        steps, ADMIT_DEFERRED after it (a request is deferred when it
        was accepted this slot but the policy left it pending), and the
        CHECKPOINT marker closes the slot.
        """
        if self.done:
            raise ConfigurationError("service already drained; "
                                     "construct a new one to run again")
        if not self._started:
            self.start()
        metrics = self._metrics
        began = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        slot, batch = self._stream.next_batch()
        self._engine.clock.advance_to(slot)
        metrics.advance_slot(slot)
        with use_journal(self._journal) as journal, \
                use_metrics(metrics):
            room = max(0, self.config.queue_limit
                       - self._engine.pending_count())
            accepted = list(batch[:room])
            shed = list(batch[room:])
            if shed:
                metrics.inc("service_shed_total", len(shed))
                if journal.enabled:
                    depth = float(self._engine.pending_count()
                                  + len(accepted))
                    for request in shed:
                        journal.record(Event(
                            slot=slot, kind=EventKind.SHED,
                            request_id=request.request_id, value=depth))
            outcome = self._engine.step(self._policy, slot, accepted)
            deferred = 0
            if accepted:
                metrics.inc("service_admitted_total", len(accepted))
                still_pending = set(self._engine.pending_ids())
                for request in accepted:
                    if request.request_id in still_pending:
                        deferred += 1
                        if journal.enabled:
                            journal.record(Event(
                                slot=slot,
                                kind=EventKind.ADMIT_DEFERRED,
                                request_id=request.request_id,
                                value=float(outcome.pending_after)))
            if deferred:
                metrics.inc("service_deferred_total", deferred)
            # Account before checkpointing so the checkpoint's
            # counters include the slot it closes.
            self._account(outcome, len(shed), deferred)
            if metrics.enabled:
                metrics.inc("service_slots_total")
                metrics.set_gauge("service_queue_depth",
                                  float(outcome.pending_after))
                metrics.set_gauge("service_active_requests",
                                  float(outcome.active_after))
                metrics.observe("service_batch_size",
                                float(len(batch)), slot=slot)
            checkpointed = self._maybe_checkpoint(slot, journal)
            self._maybe_snapshot_metrics(slot)
        tick_seconds = time.perf_counter() - began  # repro: noqa DET001 -- advisory runtime metric
        self.slot_latency.observe(tick_seconds, slot)
        if metrics.enabled:
            metrics.observe("service_slot_latency_seconds",
                            tick_seconds, slot=slot)
            # Allocation watermarks, published only while a profiler
            # (loadgen --profile-mem) has tracemalloc running; sampled
            # sparsely - the snapshot-free watermark read is cheap, but
            # there is no reason to touch it every slot.  Flat gauges
            # across a long run are the service's flat-RSS claim, live.
            if slot % _ALLOC_SAMPLE_SLOTS == 0 \
                    and tracemalloc.is_tracing():
                current_b, peak_b = tracemalloc.get_traced_memory()
                metrics.set_gauge("service_alloc_current_kb",
                                  current_b / 1024.0)
                metrics.set_gauge("service_alloc_peak_kb",
                                  peak_b / 1024.0)
        if self._stream.exhausted and outcome.pending_after == 0 \
                and outcome.active_after == 0:
            self.done = True
        elif slot >= self.config.horizon_slots - 1:
            self.done = True
        return SlotReport(outcome=outcome, num_shed=len(shed),
                          num_deferred=deferred,
                          checkpointed=checkpointed,
                          admitted_total=int(self.counters["accepted"]),
                          deferred_total=int(self.counters["deferred"]),
                          shed_total=int(self.counters["shed"]),
                          dropped_total=int(self.counters["dropped"]))

    async def serve(self, max_slots: Optional[int] = None) -> int:
        """Drive :meth:`tick` as a coroutine until drained.

        Yields the event loop after every slot (``realtime`` mode
        additionally sleeps one slot length), so the service coexists
        with other coroutines on the same loop.

        Returns:
            Slots processed by this call.
        """
        processed = 0
        while not self.done:
            if max_slots is not None and processed >= max_slots:
                break
            self.tick()
            processed += 1
            if self.config.realtime:
                await asyncio.sleep(self._engine.clock.slot_length_s)
            else:
                await asyncio.sleep(0)
        return processed

    def close(self) -> None:
        """Settle leftovers and flush/close the journals (clean stop).

        A *crash* is the absence of this call: buffered journal events
        past the last checkpoint are lost, which is exactly what the
        resume path's truncation reconciles.
        """
        with use_journal(self._journal), use_metrics(self._metrics):
            if self._engine.pending_count() or self._engine.active_total():
                self._engine.finalize()
        if self._journal is not None:
            self._journal.close()
        if self._ops_journal is not None:
            self._ops_journal.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, slot: int, journal) -> bool:
        every = self.config.checkpoint_every
        if every is None or (slot + 1) % every != 0:
            return False
        if journal.enabled:
            journal.record(Event(slot=slot, kind=EventKind.CHECKPOINT))
        cursor = JournalCursor()
        if self._journal is not None:
            cursor = JournalCursor(
                events_recorded=self._journal.total_recorded,
                byte_position=self._journal.byte_position())
        policy_state = None
        if hasattr(self._policy, "export_state"):
            policy_state = self._policy.export_state()
        # Count the checkpoint *before* exporting the registry, so the
        # checkpoint includes its own write and a resumed series
        # continues exactly (no off-by-one against an uninterrupted run).
        self._metrics.inc("service_checkpoints_total")
        checkpoint = ServiceCheckpoint(
            config=self.config,
            slot=slot,
            engine_state=self._engine.export_state(),
            policy_state=policy_state,
            stream_state=self._stream.export_state(),
            journal=cursor,
            counters=dict(self.counters),
            metrics_state=self._metrics.export_state(),
        )
        write_checkpoint(self.config.checkpoint_path, checkpoint)
        self.last_checkpoint_slot = slot
        self._ops_record(Event(slot=slot, kind=EventKind.CHECKPOINT))
        return True

    def _maybe_snapshot_metrics(self, slot: int) -> None:
        """Append a METRICS_SNAPSHOT marker to the ops stream.

        The payload is the registry's counters and gauges as canonical
        sorted tuples - enough for offline replay of the live series
        without re-running the service.  Ops-side only by construction:
        the decision journal's byte stream is untouched.
        """
        every = self.config.metrics_snapshot_every
        if every is None or (slot + 1) % every != 0:
            return
        self._metrics.inc("service_metrics_snapshots_total")
        snapshot = self._metrics.snapshot()
        detail = tuple(
            [("slot", snapshot["slot"])]
            + [("counter", series, value)
               for series, value in sorted(snapshot["counters"].items())]
            + [("gauge", series, value)
               for series, value in sorted(snapshot["gauges"].items())]
            + [("hist", series, stats["count"], stats["sum"],
                stats["p50"], stats["p95"], stats["p99"])
               for series, stats in sorted(snapshot["histograms"].items())]
        )
        self._ops_record(Event(slot=slot,
                               kind=EventKind.METRICS_SNAPSHOT,
                               detail=detail))

    def _ops_record(self, event: Event) -> None:
        self.ops_events.append(event)
        if self._ops_journal is not None:
            self._ops_journal.record(event)

    def _account(self, outcome: SlotOutcome, num_shed: int,
                 num_deferred: int) -> None:
        counters = self.counters
        counters["arrivals"] += outcome.num_arrivals + num_shed
        counters["accepted"] += outcome.num_arrivals
        counters["shed"] += num_shed
        counters["deferred"] += num_deferred
        counters["started"] += outcome.num_started
        counters["completed"] += outcome.num_completed
        counters["dropped"] += outcome.num_dropped
        counters["reward"] += outcome.slot_reward
        counters["slots"] += 1

    # Introspection -----------------------------------------------------
    @property
    def engine(self) -> OnlineEngine:
        """The underlying engine (live occupancy views)."""
        return self._engine

    @property
    def journal(self) -> Optional[Journal]:
        """The streaming decision journal (None when unjournaled)."""
        return self._journal

    @property
    def metrics(self):
        """The registry instrumentation writes to (possibly null)."""
        return self._metrics

    def status(self) -> Dict[str, object]:
        """A JSON-able live-state summary (the `/metrics?format=json`
        and ops-console payload)."""
        return {
            "policy": self.config.policy,
            "slot": self._engine.clock.current_slot,
            "done": self.done,
            "pending": self._engine.pending_count(),
            "active": self._engine.active_total(),
            "queue_limit": self.config.queue_limit,
            "last_checkpoint_slot": self.last_checkpoint_slot,
            "checkpoint_every": self.config.checkpoint_every,
            "counters": {key: self.counters[key]
                         for key in COUNTER_KEYS},
            "slot_latency": self.slot_latency.snapshot(),
        }

    def __repr__(self) -> str:
        pending = self._engine.pending_count()
        checkpoint = ("never" if self.last_checkpoint_slot is None
                      else f"@{self.last_checkpoint_slot}")
        return (f"AdmissionService(policy={self.config.policy!r}, "
                f"slot={self._engine.clock.current_slot}, "
                f"pending={pending}/{self.config.queue_limit}, "
                f"active={self._engine.active_total()}, "
                f"shed={int(self.counters['shed'])}, "
                f"checkpoint={checkpoint}, "
                f"done={self.done})")
