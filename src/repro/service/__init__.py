"""Long-lived streaming admission service.

The batch experiments answer "what did the horizon earn?"; this package
answers "can the online machinery run *forever*?".  It wraps the
slotted engine in an asyncio admission loop with bounded-queue
backpressure (ADMIT / ADMIT_DEFERRED / SHED journaled as first-class
events), deterministic checkpoint/restore (a killed service resumes
with a byte-identical decision journal), and a load-generator CLI
(``python -m repro.service loadgen``) that measures sustained
throughput, p50/p95/p99 slot latency, and peak RSS into the
repository's run manifest format.

Live observability rides on :mod:`repro.telemetry.metrics`: a
:class:`~repro.telemetry.metrics.MetricsRegistry` attached to the
service is exposed over HTTP by :class:`~repro.service.http.
MetricsEndpoint` (`/metrics` Prometheus text + JSON, `/healthz`,
`/readyz`) and rendered in a terminal by ``python -m repro.service
status`` / ``watch`` (:mod:`repro.service.console`).
"""

from .checkpoint import (CHECKPOINT_SCHEMA, JournalCursor,
                         ServiceCheckpoint, read_checkpoint,
                         truncate_journal, write_checkpoint)
from .console import fetch_status, render_status, run_status, run_watch
from .http import MetricsEndpoint
from .loop import (COUNTER_KEYS, SERVICE_POLICIES, AdmissionService,
                   ServiceConfig, SlotReport)
from .loadgen import build_config, run_loadgen, run_resume

__all__ = [
    "AdmissionService",
    "ServiceConfig",
    "SlotReport",
    "SERVICE_POLICIES",
    "COUNTER_KEYS",
    "ServiceCheckpoint",
    "JournalCursor",
    "CHECKPOINT_SCHEMA",
    "MetricsEndpoint",
    "read_checkpoint",
    "write_checkpoint",
    "truncate_journal",
    "build_config",
    "fetch_status",
    "render_status",
    "run_loadgen",
    "run_resume",
    "run_status",
    "run_watch",
]
