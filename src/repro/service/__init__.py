"""Long-lived streaming admission service.

The batch experiments answer "what did the horizon earn?"; this package
answers "can the online machinery run *forever*?".  It wraps the
slotted engine in an asyncio admission loop with bounded-queue
backpressure (ADMIT / ADMIT_DEFERRED / SHED journaled as first-class
events), deterministic checkpoint/restore (a killed service resumes
with a byte-identical decision journal), and a load-generator CLI
(``python -m repro.service loadgen``) that measures sustained
throughput, p95 slot latency, and peak RSS into the repository's run
manifest format.
"""

from .checkpoint import (CHECKPOINT_SCHEMA, JournalCursor,
                         ServiceCheckpoint, read_checkpoint,
                         truncate_journal, write_checkpoint)
from .loop import (COUNTER_KEYS, SERVICE_POLICIES, AdmissionService,
                   ServiceConfig, SlotReport)
from .loadgen import build_config, run_loadgen, run_resume

__all__ = [
    "AdmissionService",
    "ServiceConfig",
    "SlotReport",
    "SERVICE_POLICIES",
    "COUNTER_KEYS",
    "ServiceCheckpoint",
    "JournalCursor",
    "CHECKPOINT_SCHEMA",
    "read_checkpoint",
    "write_checkpoint",
    "truncate_journal",
    "build_config",
    "run_loadgen",
    "run_resume",
]
