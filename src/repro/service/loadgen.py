"""Load generator and resume driver for the admission service.

``python -m repro.service loadgen`` replays a synthetic Poisson
arrival stream through an :class:`~repro.service.loop.AdmissionService`
at a configurable rate, reports sustained throughput (requests/sec),
p95 per-slot latency, final queue depth, and peak RSS, and writes the
result as a ``BENCH_service.json`` run manifest - the same format the
bench-regression CI job diffs, with the wall-clock metrics classified
advisory (see :data:`repro.telemetry.ledger.WALL_CLOCK_METRICS`).

``--kill-at-slot`` simulates a crash: the loop abandons the service
without flushing, exactly like a SIGKILL.  ``python -m repro.service
resume`` then restores the latest checkpoint and runs the remainder;
the CI smoke job trace-diffs the resulting journal against an
uninterrupted run's.
"""

from __future__ import annotations

import asyncio
import platform as platform_module
import time
from typing import Any, Dict, Optional

from ..config import SimulationConfig
from ..telemetry.ledger import (RunManifest, _utc_now_iso, config_hash,
                                git_revision, peak_rss_kb, write_bench)
from ..telemetry.summary import percentile_linear
from .loop import AdmissionService, ServiceConfig


def build_config(arrivals: int, rate: float, policy: str = "greedy",
                 seed: int = 0, queue_limit: int = 256,
                 journal_path: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 flush_every: int = 1024) -> ServiceConfig:
    """A loadgen :class:`ServiceConfig` with a derived horizon.

    The horizon covers the arrival phase (``arrivals / rate`` slots)
    plus a generous drain margin (stream duration, deadline budget, and
    slack), so a healthy run always finishes by draining rather than by
    hitting the horizon.
    """
    sim = SimulationConfig(seed=seed)
    drain_margin = (sim.requests.stream_duration_slots
                    + int(sim.requests.deadline_ms / 50.0) + 1000)
    horizon = int(arrivals / rate) + drain_margin
    return ServiceConfig(
        sim=sim,
        horizon_slots=horizon,
        mean_arrivals_per_slot=rate,
        max_arrivals=arrivals,
        policy=policy,
        queue_limit=queue_limit,
        journal_path=journal_path,
        flush_every=flush_every,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )


def _metrics_row(service: AdmissionService,
                 elapsed_s: float) -> Dict[str, float]:
    """The loadgen's headline metric row (deterministic counts first).

    ``requests_per_s`` and ``p95_slot_ms`` are wall-clock and compare
    advisory-only in bench-diff; every other entry is a pure function
    of config + seed and gates normally.
    """
    counters = service.counters
    latencies = list(service.slot_latencies)
    p95_ms = (percentile_linear(latencies, 95.0) * 1000.0
              if latencies else 0.0)
    rate = counters["arrivals"] / elapsed_s if elapsed_s > 0 else 0.0
    return {
        "num_arrivals": counters["arrivals"],
        "num_accepted": counters["accepted"],
        "num_shed": counters["shed"],
        "num_deferred": counters["deferred"],
        "num_started": counters["started"],
        "num_completed": counters["completed"],
        "num_dropped": counters["dropped"],
        "total_reward": counters["reward"],
        "num_slots": counters["slots"],
        "requests_per_s": rate,
        "p95_slot_ms": p95_ms,
        "runtime_s": elapsed_s,
    }


def run_loadgen(arrivals: int = 50_000, rate: float = 8.0,
                policy: str = "greedy", seed: int = 0,
                queue_limit: int = 256,
                journal_path: Optional[str] = None,
                checkpoint_path: Optional[str] = None,
                checkpoint_every: Optional[int] = None,
                flush_every: int = 1024,
                kill_at_slot: Optional[int] = None,
                bench_path: Optional[str] = None,
                name: str = "service") -> Dict[str, Any]:
    """Run one loadgen pass; returns a summary dict.

    Args:
        kill_at_slot: abandon the service (crash simulation: nothing
            flushed or finalized) once this slot has executed.  The
            summary then carries ``"killed": True`` and no bench file
            is written.
        bench_path: write a ``BENCH_<name>.json`` manifest here.
    """
    config = build_config(arrivals, rate, policy=policy, seed=seed,
                          queue_limit=queue_limit,
                          journal_path=journal_path,
                          checkpoint_path=checkpoint_path,
                          checkpoint_every=checkpoint_every,
                          flush_every=flush_every)
    service = AdmissionService(config)
    began = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    if kill_at_slot is not None:
        while not service.done:
            report = service.tick()
            if report.outcome.slot >= kill_at_slot:
                return {"killed": True,
                        "slot": report.outcome.slot,
                        "counters": dict(service.counters)}
    else:
        asyncio.run(service.serve())
    service.close()
    elapsed = time.perf_counter() - began  # repro: noqa DET001 -- advisory runtime metric
    return finish_run(service, elapsed, bench_path=bench_path,
                      name=name)


def run_resume(checkpoint_path: str,
               bench_path: Optional[str] = None,
               name: str = "service") -> Dict[str, Any]:
    """Resume a killed service from its checkpoint and run to drain."""
    service = AdmissionService.resume(checkpoint_path)
    began = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    asyncio.run(service.serve())
    service.close()
    elapsed = time.perf_counter() - began  # repro: noqa DET001 -- advisory runtime metric
    return finish_run(service, elapsed, bench_path=bench_path,
                      name=name, resumed=True)


def finish_run(service: AdmissionService, elapsed_s: float,
               bench_path: Optional[str] = None,
               name: str = "service",
               resumed: bool = False) -> Dict[str, Any]:
    """Build the summary (and optionally the bench manifest)."""
    row = _metrics_row(service, elapsed_s)
    summary: Dict[str, Any] = {
        "killed": False,
        "resumed": resumed,
        "policy": service.config.policy,
        "metrics": row,
    }
    if bench_path is not None:
        import numpy as np

        manifest = RunManifest(
            name=name,
            created_at=_utc_now_iso(),
            git_rev=git_revision(),
            config_hash=config_hash(service.config),
            seeds=(int(service.config.sim.seed),),
            workers=1,
            python_version=platform_module.python_version(),
            numpy_version=np.__version__,
            platform=platform_module.platform(),
            peak_rss_kb=peak_rss_kb(),
            phases={"serve": elapsed_s},
            metrics={"loadgen": row},
            extra={"policy": service.config.policy,
                   "mean_arrivals_per_slot":
                       service.config.mean_arrivals_per_slot,
                   "queue_limit": service.config.queue_limit,
                   "resumed": resumed},
        )
        summary["bench_path"] = str(write_bench(bench_path, manifest))
    return summary
