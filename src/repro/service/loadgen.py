"""Load generator and resume driver for the admission service.

``python -m repro.service loadgen`` replays a synthetic Poisson
arrival stream through an :class:`~repro.service.loop.AdmissionService`
at a configurable rate, reports sustained throughput (requests/sec),
p50/p95/p99 per-slot latency (from the service's bounded streaming
histogram - RSS stays flat at any arrival count), final queue depth,
and peak RSS, and writes the result as a ``BENCH_service.json`` run
manifest - the same format the bench-regression CI job diffs, with the
wall-clock metrics classified advisory (see
:data:`repro.telemetry.ledger.WALL_CLOCK_METRICS`).

Runs are metered by default: a live
:class:`~repro.telemetry.metrics.MetricsRegistry` rides the service
(scrapeable via ``--metrics-port``), and its state checkpoints with
the service so a resumed run's counters continue instead of resetting.

``--kill-at-slot`` simulates a crash: the loop abandons the service
without flushing, exactly like a SIGKILL.  ``python -m repro.service
resume`` then restores the latest checkpoint and runs the remainder;
the CI smoke job trace-diffs the resulting journal against an
uninterrupted run's.
"""

from __future__ import annotations

import asyncio
import cProfile
import platform as platform_module
import sys
import time
import tracemalloc
from contextlib import ExitStack
from typing import Any, Dict, List, Optional

from ..config import SimulationConfig
from ..telemetry import profiling
from ..telemetry.ledger import (RunManifest, _utc_now_iso, config_hash,
                                git_revision, peak_rss_kb, write_bench)
from ..telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from ..telemetry.tracer import Tracer, use_tracer
from .http import MetricsEndpoint
from .loop import AdmissionService, ServiceConfig


def build_config(arrivals: int, rate: float, policy: str = "greedy",
                 seed: int = 0, queue_limit: int = 256,
                 journal_path: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 flush_every: int = 1024) -> ServiceConfig:
    """A loadgen :class:`ServiceConfig` with a derived horizon.

    The horizon covers the arrival phase (``arrivals / rate`` slots)
    plus a generous drain margin (stream duration, deadline budget, and
    slack), so a healthy run always finishes by draining rather than by
    hitting the horizon.
    """
    sim = SimulationConfig(seed=seed)
    drain_margin = (sim.requests.stream_duration_slots
                    + int(sim.requests.deadline_ms / 50.0) + 1000)
    horizon = int(arrivals / rate) + drain_margin
    return ServiceConfig(
        sim=sim,
        horizon_slots=horizon,
        mean_arrivals_per_slot=rate,
        max_arrivals=arrivals,
        policy=policy,
        queue_limit=queue_limit,
        journal_path=journal_path,
        flush_every=flush_every,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )


def _metrics_row(service: AdmissionService,
                 elapsed_s: float) -> Dict[str, float]:
    """The loadgen's headline metric row (deterministic counts first).

    ``requests_per_s`` and the latency percentiles are wall-clock and
    compare advisory-only in bench-diff; every other entry is a pure
    function of config + seed and gates normally.  Percentiles come
    from the service's streaming histogram - no per-slot sample list
    exists anywhere, so RSS stays flat at 10^6+ arrivals.
    """
    counters = service.counters
    latency = service.slot_latency
    rate = counters["arrivals"] / elapsed_s if elapsed_s > 0 else 0.0
    return {
        "num_arrivals": counters["arrivals"],
        "num_accepted": counters["accepted"],
        "num_shed": counters["shed"],
        "num_deferred": counters["deferred"],
        "num_started": counters["started"],
        "num_completed": counters["completed"],
        "num_dropped": counters["dropped"],
        "total_reward": counters["reward"],
        "num_slots": counters["slots"],
        "requests_per_s": rate,
        "p50_slot_ms": latency.quantile(50.0) * 1000.0,
        "p95_slot_ms": latency.quantile(95.0) * 1000.0,
        "p99_slot_ms": latency.quantile(99.0) * 1000.0,
        "runtime_s": elapsed_s,
    }


async def _serve_with_endpoint(service: AdmissionService,
                               port: int) -> None:
    """Serve to drain with a scrape endpoint on the same loop."""
    endpoint = await MetricsEndpoint(service, port=port).start()
    print(f"metrics endpoint: {endpoint.url}/metrics", file=sys.stderr)
    try:
        await service.serve()
    finally:
        await endpoint.stop()


class _ProfileSession:
    """Optional profiling scaffolding around a service drive loop.

    Owns the tracer span stream, the :mod:`cProfile` capture, and (with
    ``profile_mem``) a :mod:`tracemalloc` session; ``finish()`` reduces
    them to the same digest/stats/memory triple the experiment executor
    attaches to run records.  All-``False`` construction is inert: no
    tracer installs, no profiler starts, ``finish()`` returns ``None``.
    """

    def __init__(self, profile: bool = False,
                 profile_mem: bool = False) -> None:
        self.enabled = bool(profile)
        self.profile_mem = bool(profile_mem)
        self.tracer = Tracer() if self.enabled else None
        self.profiler = cProfile.Profile() if self.enabled else None
        self._own_tm = (self.profile_mem
                        and not tracemalloc.is_tracing())

    def attach(self, stack: ExitStack) -> None:
        """Install the tracer / profiler / tracemalloc via ``stack``."""
        if self._own_tm:
            tracemalloc.start()
            stack.callback(tracemalloc.stop)
        if self.tracer is not None:
            stack.enter_context(use_tracer(self.tracer))
        if self.profiler is not None:
            self.profiler.enable()
            stack.callback(self.profiler.disable)

    def finish(self, registry: MetricsRegistry) \
            -> Optional[Dict[str, Any]]:
        """Reduce captures to ``{"digest", "stats", "memory"}``."""
        memory: Optional[List[Dict[str, Any]]] = None
        if self.profile_mem and tracemalloc.is_tracing():
            memory = profiling.capture_memory_top(
                tracemalloc.take_snapshot())
        if not self.enabled:
            if memory is None:
                return None
            return {"digest": None, "stats": None, "memory": memory}
        assert self.tracer is not None and self.profiler is not None
        registry_counters = (registry.snapshot()["counters"]
                             if registry.enabled else None)
        digest = profiling.digest_from_events(
            self.tracer.events(), registry_counters)
        return {"digest": digest,
                "stats": profiling.capture_stats(self.profiler),
                "memory": memory}


def run_loadgen(arrivals: int = 50_000, rate: float = 8.0,
                policy: str = "greedy", seed: int = 0,
                queue_limit: int = 256,
                journal_path: Optional[str] = None,
                checkpoint_path: Optional[str] = None,
                checkpoint_every: Optional[int] = None,
                flush_every: int = 1024,
                kill_at_slot: Optional[int] = None,
                bench_path: Optional[str] = None,
                name: str = "service",
                metrics: bool = True,
                metrics_port: Optional[int] = None,
                profile: bool = False,
                profile_out: Optional[str] = None,
                profile_mem: bool = False) -> Dict[str, Any]:
    """Run one loadgen pass; returns a summary dict.

    Args:
        kill_at_slot: abandon the service (crash simulation: nothing
            flushed or finalized) once this slot has executed.  The
            summary then carries ``"killed": True`` and no bench file
            is written.
        bench_path: write a ``BENCH_<name>.json`` manifest here.
        metrics: attach a live :class:`MetricsRegistry` (the default;
            ``False`` runs with the zero-overhead null registry).
        metrics_port: additionally serve `/metrics` / `/healthz` /
            `/readyz` on this port while the run drains (0 = pick a
            free port; printed to stderr).
        profile: capture a span-attribution digest plus cProfile stats
            for the serve loop; the digest lands in the summary under
            ``"profile"`` and in the bench manifest's ``profiles``.
        profile_out: write a collapsed-stack (flamegraph.pl /
            speedscope loadable) ``.folded`` file here; implies
            ``profile``.
        profile_mem: trace allocations with :mod:`tracemalloc` - the
            serve loop publishes ``service_alloc_{current,peak}_kb``
            gauges and the summary gains top allocation sites.
    """
    config = build_config(arrivals, rate, policy=policy, seed=seed,
                          queue_limit=queue_limit,
                          journal_path=journal_path,
                          checkpoint_path=checkpoint_path,
                          checkpoint_every=checkpoint_every,
                          flush_every=flush_every)
    registry = MetricsRegistry() if metrics else NULL_REGISTRY
    service = AdmissionService(config, registry=registry)
    session = _ProfileSession(profile=bool(profile or profile_out),
                              profile_mem=profile_mem)
    began = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    killed_summary: Optional[Dict[str, Any]] = None
    with ExitStack() as stack:
        session.attach(stack)
        if kill_at_slot is not None:
            while not service.done:
                report = service.tick()
                if report.outcome.slot >= kill_at_slot:
                    killed_summary = {
                        "killed": True,
                        "slot": report.outcome.slot,
                        "counters": dict(service.counters)}
                    if registry.enabled:
                        killed_summary["registry_counters"] = \
                            registry.snapshot()["counters"]
                    break
        elif metrics_port is not None:
            asyncio.run(_serve_with_endpoint(service, metrics_port))
        else:
            asyncio.run(service.serve())
        if killed_summary is None:
            service.close()
        captured = session.finish(registry)
    if killed_summary is not None:
        return killed_summary
    elapsed = time.perf_counter() - began  # repro: noqa DET001 -- advisory runtime metric
    return finish_run(service, elapsed, bench_path=bench_path,
                      name=name, captured=captured,
                      profile_out=profile_out)


def run_resume(checkpoint_path: str,
               bench_path: Optional[str] = None,
               name: str = "service",
               metrics: bool = True,
               metrics_port: Optional[int] = None,
               profile: bool = False,
               profile_out: Optional[str] = None,
               profile_mem: bool = False) -> Dict[str, Any]:
    """Resume a killed service from its checkpoint and run to drain.

    With ``metrics`` (the default) the checkpoint's registry state is
    restored into a fresh registry, so the reported series continue
    from their pre-kill values.  The ``profile*`` knobs mirror
    :func:`run_loadgen` and cover only the resumed portion.
    """
    registry = MetricsRegistry() if metrics else None
    service = AdmissionService.resume(checkpoint_path,
                                      registry=registry)
    session = _ProfileSession(profile=bool(profile or profile_out),
                              profile_mem=profile_mem)
    began = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    with ExitStack() as stack:
        session.attach(stack)
        if metrics_port is not None:
            asyncio.run(_serve_with_endpoint(service, metrics_port))
        else:
            asyncio.run(service.serve())
        service.close()
        captured = session.finish(service.metrics)
    elapsed = time.perf_counter() - began  # repro: noqa DET001 -- advisory runtime metric
    return finish_run(service, elapsed, bench_path=bench_path,
                      name=name, resumed=True, captured=captured,
                      profile_out=profile_out)


def finish_run(service: AdmissionService, elapsed_s: float,
               bench_path: Optional[str] = None,
               name: str = "service",
               resumed: bool = False,
               captured: Optional[Dict[str, Any]] = None,
               profile_out: Optional[str] = None) -> Dict[str, Any]:
    """Build the summary (and optionally the bench manifest)."""
    row = _metrics_row(service, elapsed_s)
    summary: Dict[str, Any] = {
        "killed": False,
        "resumed": resumed,
        "policy": service.config.policy,
        "metrics": row,
    }
    if service.metrics.enabled:
        summary["registry_counters"] = \
            service.metrics.snapshot()["counters"]
    digest = captured.get("digest") if captured else None
    if digest is not None:
        summary["profile"] = digest.to_dict()
        print(profiling.render_digest(digest, top=10),
              file=sys.stderr)
        if profile_out is not None:
            stats = captured.get("stats") if captured else None
            if stats:
                lines = profiling.folded_from_stats(stats)
            else:
                lines = profiling.folded_from_digest(digest)
            path = profiling.write_folded(profile_out, lines)
            print(f"collapsed stacks: {path} ({len(lines)} frames)",
                  file=sys.stderr)
    memory = captured.get("memory") if captured else None
    if memory is not None:
        summary["profile_mem"] = memory
        print(profiling.render_memory_top(memory[:10]),
              file=sys.stderr)
    if bench_path is not None:
        import numpy as np

        manifest = RunManifest(
            name=name,
            created_at=_utc_now_iso(),
            git_rev=git_revision(),
            config_hash=config_hash(service.config),
            seeds=(int(service.config.sim.seed),),
            workers=1,
            python_version=platform_module.python_version(),
            numpy_version=np.__version__,
            platform=platform_module.platform(),
            peak_rss_kb=peak_rss_kb(),
            phases={"serve": elapsed_s},
            metrics={"loadgen": row},
            profiles=({"loadgen": digest.to_dict()}
                      if digest is not None else {}),
            extra={"policy": service.config.policy,
                   "mean_arrivals_per_slot":
                       service.config.mean_arrivals_per_slot,
                   "queue_limit": service.config.queue_limit,
                   "resumed": resumed},
        )
        summary["bench_path"] = str(write_bench(bench_path, manifest))
    return summary
