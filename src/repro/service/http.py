"""Asyncio scrape endpoint for a live :class:`AdmissionService`.

Runs on the *same* event loop as :meth:`AdmissionService.serve` (one
thread, no locks - the handler only ever reads between ticks), built
directly on ``asyncio.start_server`` so the repository stays free of
HTTP framework dependencies.  Three routes:

``/metrics``
    Prometheus text exposition (format 0.0.4) of the service's
    :class:`~repro.telemetry.metrics.MetricsRegistry`.  With
    ``?format=json`` (or ``Accept: application/json``) it returns the
    registry snapshot plus the service's live status - the payload the
    ops console (``python -m repro.service watch``) renders.

``/healthz``
    Liveness: 200 as long as the loop can answer at all.

``/readyz``
    Readiness: 503 when the pending queue is saturated
    (``pending >= saturation_fraction * queue_limit`` - new arrivals
    are being shed) or when checkpointing is configured but stale
    (more than ``staleness_slots`` slots since the last checkpoint -
    a crash now would replay too much).  The JSON body lists each
    probe's verdict.

This module is the service's **exposition layer**: the one place
wall-clock time may legitimately appear next to metric data (scrape
timestamps are meaningful to an operator, meaningless to the
determinism contract).  It is therefore on the DET001 allowlist - see
docs/ANALYSIS.md for the rationale.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ConfigurationError
from .loop import AdmissionService

#: Default readiness thresholds (see :class:`MetricsEndpoint`).
DEFAULT_SATURATION_FRACTION = 0.95
DEFAULT_STALENESS_SLOTS = 10_000


class MetricsEndpoint:
    """One scrape endpoint bound to one service.

    Args:
        service: the live service to expose.
        host: bind address (loopback by default - put a real proxy in
            front for anything else).
        port: TCP port; 0 picks a free one (see :attr:`port` after
            :meth:`start`).
        saturation_fraction: `/readyz` turns 503 when the pending
            queue reaches this fraction of ``queue_limit``.
        staleness_slots: `/readyz` turns 503 when checkpointing is
            configured and the last checkpoint is more than this many
            slots behind the live slot.
    """

    def __init__(self, service: AdmissionService,
                 host: str = "127.0.0.1", port: int = 0,
                 saturation_fraction: float = DEFAULT_SATURATION_FRACTION,
                 staleness_slots: int = DEFAULT_STALENESS_SLOTS) -> None:
        if not 0.0 < saturation_fraction <= 1.0:
            raise ConfigurationError(
                f"saturation_fraction must be in (0, 1], got "
                f"{saturation_fraction}")
        if staleness_slots < 1:
            raise ConfigurationError(
                f"staleness_slots must be >= 1, got {staleness_slots}")
        self.service = service
        self.host = host
        self.port = port
        self.saturation_fraction = saturation_fraction
        self.staleness_slots = staleness_slots
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MetricsEndpoint":
        """Bind and start serving; resolves the actual port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting connections and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=5.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            accept = ""
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                header = line.decode("latin-1")
                if header.lower().startswith("accept:"):
                    accept = header.split(":", 1)[1].strip()
            if method.upper() not in ("GET", "HEAD"):
                status, content_type, body = (
                    405, "text/plain; charset=utf-8",
                    b"method not allowed\n")
            else:
                status, content_type, body = self._route(target, accept)
            writer.write(_response_bytes(
                status, content_type, body,
                include_body=method.upper() != "HEAD"))
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _route(self, target: str,
               accept: str) -> Tuple[int, str, bytes]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/metrics":
            wants_json = (query.get("format", [""])[0] == "json"
                          or "application/json" in accept)
            if wants_json:
                return 200, "application/json", self._json_payload()
            text = self.service.metrics.to_prometheus()
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    text.encode("utf-8"))
        if path == "/healthz":
            return 200, "application/json", _json_bytes(
                {"status": "ok", "done": self.service.done})
        if path == "/readyz":
            ready, probes = self._readiness()
            payload = _json_bytes(
                {"ready": ready, "probes": probes})
            return (200 if ready else 503), "application/json", payload
        return 404, "application/json", _json_bytes(
            {"error": f"no route {path!r}",
             "routes": ["/metrics", "/healthz", "/readyz"]})

    def _json_payload(self) -> bytes:
        return _json_bytes({
            "status": self.service.status(),
            "metrics": self.service.metrics.snapshot(),
            # Scrape timestamp: exposition-layer wall clock (DET001
            # allowlisted; never enters journals or checkpoints).
            "scraped_unix": time.time(),
        })

    def _readiness(self) -> Tuple[bool, dict]:
        service = self.service
        pending = service.engine.pending_count()
        limit = service.config.queue_limit
        saturated = pending >= self.saturation_fraction * limit
        probes = {
            "queue": {
                "ok": not saturated,
                "pending": pending,
                "limit": limit,
                "saturation_fraction": self.saturation_fraction,
            },
        }
        stale = False
        if service.config.checkpoint_every is not None:
            slot = service.engine.clock.current_slot
            last = service.last_checkpoint_slot
            behind = slot if last is None else slot - last
            stale = behind > self.staleness_slots
            probes["checkpoint"] = {
                "ok": not stale,
                "slots_behind": behind,
                "staleness_slots": self.staleness_slots,
            }
        return (not saturated and not stale), probes


def _json_bytes(payload) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


_STATUS_TEXT = {200: "OK", 404: "Not Found",
                405: "Method Not Allowed", 503: "Service Unavailable"}


def _response_bytes(status: int, content_type: str, body: bytes,
                    include_body: bool = True) -> bytes:
    """One full HTTP/1.1 response.  A HEAD reply (``include_body``
    False) keeps the GET body's Content-Length but sends no body."""
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + (body if include_body else b"")
