"""Seeded random-number-generator plumbing.

Every stochastic component of the library (topology generation, request
sampling, randomized rounding, the online engine) draws from a
:class:`numpy.random.Generator`.  To make whole experiments reproducible
from a single integer seed while keeping components statistically
independent, we fan a root seed out into named child generators using
:class:`numpy.random.SeedSequence.spawn`.

Example:
    >>> forks = RngForks(seed=7)
    >>> topo_rng = forks.child("topology")
    >>> bool(forks.child("topology").integers(10)
    ...      == topo_rng.integers(10))
    True
    >>> cached = forks.cached_child("requests")
    >>> forks.cached_child("requests") is cached
    True

Children are *stable by name*: identically-named children are seeded
identically, so :meth:`RngForks.child` *replays* a stream from its
start on every call (the first draws above match), and two
:class:`RngForks` built from the same seed hand out identical streams
for identical names, regardless of the order in which the names are
requested.  Use :meth:`RngForks.cached_child` when a stream should
keep advancing across call sites instead.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike) -> np.random.Generator:
    """Coerce ``None`` / ``int`` / ``Generator`` into a Generator.

    Args:
        rng: ``None`` (fresh unpredictable generator), an integer seed,
            or an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _name_to_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RngForks:
    """Fan a root seed out into named, order-independent child streams.

    Args:
        seed: root seed.  ``None`` produces an unpredictable root (still
            internally consistent: the same instance hands out the same
            child only once per unique name).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._children: Dict[str, np.random.Generator] = {}

    def child(self, name: str) -> np.random.Generator:
        """Return a fresh generator for `name`.

        Repeated calls with the same name return *new* generators seeded
        identically, so a caller can replay a stream by re-requesting it.
        """
        key = _name_to_key(name)
        seq = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(key,))
        gen = np.random.default_rng(seq)
        self._children[name] = gen
        return gen

    def cached_child(self, name: str) -> np.random.Generator:
        """Like :meth:`child` but memoized: the stream keeps advancing."""
        if name not in self._children:
            return self.child(name)
        return self._children[name]
