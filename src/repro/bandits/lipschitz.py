"""Discretized Lipschitz bandit over a continuous interval.

Composes an :class:`~repro.bandits.arms.ArmGrid` with any finite-arm
policy (successive elimination by default, per Algorithm 3) so the
caller works in *value space* (threshold MHz in, threshold MHz out)
while the policy works in index space.  Also computes the Theorem 3
regret bound ``O(sqrt(kappa T log T) + T * eta * epsilon)``.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

from ..exceptions import ConfigurationError
from ..telemetry import get_tracer
from .arms import ArmGrid
from .successive_elimination import SuccessiveElimination


class FiniteArmPolicy(Protocol):
    """The policy surface shared by SuccessiveElimination and UCB1."""

    def select_arm(self) -> int: ...

    def best_active_arm(self) -> int: ...

    def record(self, arm: int, reward: float) -> None: ...

    def mean(self, arm: int) -> float: ...


class LipschitzBandit:
    """A continuous-arm bandit solved by discretize-then-eliminate.

    Args:
        low: left endpoint of the arm interval ``Z``.
        high: right endpoint of ``Z``.
        num_arms: ``kappa`` grid points.
        horizon: horizon ``T`` used by the default policy's radius.
        policy: optional pre-built finite-arm policy; defaults to
            :class:`SuccessiveElimination` over the grid.
        explore_fraction: fraction of the horizon spent pulling the
            policy's exploration choice before committing to the best
            active arm each step (exploration never fully stops; this
            only biases the schedule - successive elimination keeps
            converging either way).
    """

    def __init__(self, low: float, high: float, num_arms: int,
                 horizon: int,
                 policy: Optional[FiniteArmPolicy] = None,
                 explore_fraction: float = 0.3,
                 confidence_scale: float = 1.0) -> None:
        if not 0 <= explore_fraction <= 1:
            raise ConfigurationError(
                f"explore_fraction must lie in [0, 1], got "
                f"{explore_fraction}")
        self._grid = ArmGrid(low, high, num_arms)
        self._policy: FiniteArmPolicy = policy or SuccessiveElimination(
            num_arms=self._grid.num_arms, horizon=horizon,
            confidence_scale=confidence_scale)
        self._horizon = horizon
        self._explore_budget = int(math.ceil(explore_fraction * horizon))
        self._steps = 0
        self._last_arm: Optional[int] = None

    @property
    def grid(self) -> ArmGrid:
        """The discretization."""
        return self._grid

    @property
    def policy(self) -> FiniteArmPolicy:
        """The underlying finite-arm policy."""
        return self._policy

    @property
    def steps(self) -> int:
        """Number of select/record cycles completed."""
        return self._steps

    def select_value(self) -> float:
        """Choose the next threshold value to play.

        Explores (least-played active arm) during the exploration
        budget, then exploits (best active arm).  The chosen arm is
        remembered so :meth:`record` can attribute the reward.
        """
        if self._steps < self._explore_budget:
            arm = self._policy.select_arm()
            get_tracer().count("bandit_explore_steps")
        else:
            arm = self._policy.best_active_arm()
            get_tracer().count("bandit_exploit_steps")
        self._last_arm = arm
        return self._grid.value(arm)

    def record(self, reward: float) -> None:
        """Attribute a reward to the most recently selected arm."""
        if self._last_arm is None:
            raise ConfigurationError(
                "record() called before select_value()")
        self._policy.record(self._last_arm, reward)
        self._steps += 1
        self._last_arm = None

    def best_value(self) -> float:
        """Current exploitation choice in value space."""
        return self._grid.value(self._policy.best_active_arm())

    def regret_bound(self, lipschitz_eta: float) -> float:
        """Theorem 3: ``sqrt(kappa T log T) + T * eta * epsilon``.

        Returned without the hidden constant (the bound is stated in
        O-notation); useful for plotting the bound's *shape* against
        measured regret.
        """
        kappa = self._grid.num_arms
        t = max(self._horizon, 2)
        return (math.sqrt(kappa * t * math.log(t))
                + t * self._grid.discretization_error_bound(lipschitz_eta))

    def __repr__(self) -> str:
        return (f"LipschitzBandit({self._grid!r}, steps={self._steps}/"
                f"{self._horizon})")
