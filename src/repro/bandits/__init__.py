"""Multi-armed bandit substrate for the online learning algorithm.

Algorithm 3 (DynamicRR) tunes the per-request resource threshold
``C^th`` with a *discretized Lipschitz bandit*: the continuous interval
``Z = [C^th_min, C^th_max]`` is cut into ``kappa`` arms of spacing
``epsilon`` and a **successive elimination** policy keeps only arms
whose upper confidence bound is not dominated by another arm's lower
confidence bound.  This subpackage provides:

* :class:`~repro.bandits.arms.ArmGrid` - the discretization,
* :class:`~repro.bandits.successive_elimination.SuccessiveElimination` -
  the policy of Algorithm 3 lines 5-9,
* :class:`~repro.bandits.ucb.UCB1` - a classical comparison policy,
* :class:`~repro.bandits.lipschitz.LipschitzBandit` - glue composing a
  grid with any finite-arm policy, with the discretization-error bound
  of Theorem 3,
* :class:`~repro.bandits.regret.RegretTracker` - empirical regret
  accounting against the best fixed arm.
"""

from .arms import ArmGrid
from .successive_elimination import SuccessiveElimination
from .ucb import UCB1
from .epsilon_greedy import EpsilonGreedy
from .lipschitz import LipschitzBandit
from .regret import RegretTracker

__all__ = [
    "ArmGrid",
    "SuccessiveElimination",
    "UCB1",
    "EpsilonGreedy",
    "LipschitzBandit",
    "RegretTracker",
]
