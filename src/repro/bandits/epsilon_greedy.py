"""Epsilon-greedy - the simplest exploration baseline.

Included to complete the ablation family around Algorithm 3's
successive elimination: with probability ``epsilon_t`` explore a
uniformly random arm, otherwise exploit the best empirical mean.  The
default schedule decays ``epsilon_t = min(1, c / t)``, which achieves
logarithmic regret when tuned but - unlike successive elimination -
never *stops* sampling provably bad arms, which is exactly the
behaviour the threshold bandit exists to avoid.

Exposes the same ``select_arm`` / ``best_active_arm`` / ``record`` /
``mean`` surface as the other policies so it slots straight into
:class:`~repro.bandits.lipschitz.LipschitzBandit` and DynamicRR.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng


class EpsilonGreedy:
    """Decaying epsilon-greedy over a finite arm set.

    Args:
        num_arms: size of the arm set.
        epsilon_scale: the ``c`` of ``epsilon_t = min(1, c / t)``.
        rng: randomness for the exploration coin and arm draw.
    """

    def __init__(self, num_arms: int, epsilon_scale: float = 5.0,
                 rng: RngLike = None) -> None:
        if num_arms < 1:
            raise ConfigurationError(
                f"need at least one arm, got {num_arms}")
        if epsilon_scale <= 0:
            raise ConfigurationError(
                f"epsilon_scale must be positive, got {epsilon_scale}")
        self._num_arms = num_arms
        self._scale = epsilon_scale
        self._rng = ensure_rng(rng)
        self._counts = np.zeros(num_arms, dtype=int)
        self._sums = np.zeros(num_arms, dtype=float)
        self._total_plays = 0

    @property
    def num_arms(self) -> int:
        """Size of the arm set."""
        return self._num_arms

    @property
    def total_plays(self) -> int:
        """Total rewards recorded."""
        return self._total_plays

    def epsilon(self) -> float:
        """Current exploration probability."""
        return min(1.0, self._scale / max(self._total_plays, 1))

    def active_arms(self) -> List[int]:
        """Epsilon-greedy never eliminates arms."""
        return list(range(self._num_arms))

    def count(self, arm: int) -> int:
        """Times an arm has been played."""
        self._check_arm(arm)
        return int(self._counts[arm])

    def mean(self, arm: int) -> float:
        """Empirical mean reward (0.0 before any play)."""
        self._check_arm(arm)
        if self._counts[arm] == 0:
            return 0.0
        return float(self._sums[arm] / self._counts[arm])

    def select_arm(self) -> int:
        """Explore with probability epsilon, else exploit."""
        if self._rng.random() < self.epsilon():
            return int(self._rng.integers(self._num_arms))
        return self.best_active_arm()

    def best_active_arm(self) -> int:
        """The arm with the best empirical mean (ties: lowest index)."""
        return max(range(self._num_arms),
                   key=lambda a: (self.mean(a), -a))

    def record(self, arm: int, reward: float) -> None:
        """Record an observed reward."""
        self._check_arm(arm)
        self._counts[arm] += 1
        self._sums[arm] += float(reward)
        self._total_plays += 1

    def _check_arm(self, arm: int) -> None:
        if not 0 <= arm < self._num_arms:
            raise ConfigurationError(
                f"arm index {arm} out of range [0, {self._num_arms})")

    def __repr__(self) -> str:
        return (f"EpsilonGreedy(arms={self._num_arms}, "
                f"eps={self.epsilon():.3f}, plays={self._total_plays})")
