"""Empirical regret accounting against the best fixed arm.

Theorem 3 bounds the *expected* regret
``E[R(T)] = T * ER^*(Z) - W(DynamicRR)``.  Empirically we estimate
``ER^*`` by the best per-step mean reward among the arms actually
played (or a caller-supplied oracle value) and track the cumulative
difference, which the ablation benchmark plots against the
``sqrt(kappa T log T)`` shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ConfigurationError


class RegretTracker:
    """Accumulates per-step (arm, reward) plays and computes regret.

    Args:
        oracle_mean: known per-step expected reward of the best arm;
            when ``None`` the tracker falls back to the best empirical
            per-arm mean observed over the whole run (a standard
            offline estimate).
    """

    def __init__(self, oracle_mean: Optional[float] = None) -> None:
        if oracle_mean is not None and oracle_mean < 0:
            raise ConfigurationError(
                f"oracle mean must be >= 0, got {oracle_mean}")
        self._oracle_mean = oracle_mean
        self._arms: List[int] = []
        self._rewards: List[float] = []

    def record(self, arm: int, reward: float) -> None:
        """Record one play."""
        self._arms.append(int(arm))
        self._rewards.append(float(reward))

    @property
    def num_steps(self) -> int:
        """Number of recorded plays ``T``."""
        return len(self._rewards)

    @property
    def total_reward(self) -> float:
        """``W`` - total collected reward."""
        return float(sum(self._rewards))

    def per_arm_means(self) -> Dict[int, float]:
        """Empirical mean reward of every arm played at least once."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for arm, reward in zip(self._arms, self._rewards):
            sums[arm] = sums.get(arm, 0.0) + reward
            counts[arm] = counts.get(arm, 0) + 1
        return {arm: sums[arm] / counts[arm] for arm in sums}

    def benchmark_mean(self) -> float:
        """Per-step reward of the comparator (oracle or best empirical)."""
        if self._oracle_mean is not None:
            return self._oracle_mean
        means = self.per_arm_means()
        if not means:
            return 0.0
        return max(means.values())

    def cumulative_regret(self) -> float:
        """``T * ER^* - W`` at the current step."""
        return self.benchmark_mean() * self.num_steps - self.total_reward

    def regret_curve(self) -> np.ndarray:
        """Regret after each step (length ``T``)."""
        if not self._rewards:
            return np.zeros(0)
        best = self.benchmark_mean()
        rewards = np.asarray(self._rewards)
        steps = np.arange(1, rewards.size + 1)
        return best * steps - np.cumsum(rewards)

    def average_regret(self) -> float:
        """Per-step regret ``R(T) / T`` (0 when no plays)."""
        if not self._rewards:
            return 0.0
        return self.cumulative_regret() / self.num_steps

    def is_sublinear(self, window: int = 10) -> bool:
        """Heuristic check that regret growth is slowing.

        Compares the average per-step regret over the first `window`
        plays with the last `window` plays; sub-linear regret means the
        tail increments are smaller.  Used by property tests - with
        stochastic rewards this is a statistical statement, so the test
        suite averages over seeds.
        """
        if self.num_steps < 2 * window:
            return True
        curve = self.regret_curve()
        head = (curve[window - 1] - 0.0) / window
        tail = (curve[-1] - curve[-1 - window]) / window
        return tail <= head + 1e-9
