"""Discretization of a continuous arm interval into a finite grid.

Algorithm 3 line 1: "Divide the interval Z into kappa intervals with
fixed length epsilon = (C^th_max - C^th_min) / (kappa - 1)", producing
the discrete arm set ``Z'``.  Under the Lipschitz condition of Eq. (21)
the best arm of ``Z'`` is within ``eta * epsilon`` of the best point of
``Z`` (Eq. 25) - :meth:`ArmGrid.discretization_error_bound`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError


class ArmGrid:
    """An evenly spaced grid of arm values over a closed interval.

    Args:
        low: ``C^th_min`` - left endpoint of ``Z``.
        high: ``C^th_max`` - right endpoint of ``Z``.
        num_arms: ``kappa`` - number of grid points (>= 1).  With one
            arm the grid degenerates to the interval midpoint.
    """

    def __init__(self, low: float, high: float, num_arms: int) -> None:
        if not low <= high:
            raise ConfigurationError(
                f"need low <= high, got [{low}, {high}]")
        if num_arms < 1:
            raise ConfigurationError(
                f"need at least one arm, got {num_arms}")
        self._low = float(low)
        self._high = float(high)
        self._num_arms = int(num_arms)
        if num_arms == 1:
            self._values = np.array([(low + high) / 2.0])
        else:
            self._values = np.linspace(low, high, num_arms)

    @property
    def num_arms(self) -> int:
        """``kappa``."""
        return self._num_arms

    @property
    def values(self) -> np.ndarray:
        """Grid values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def epsilon(self) -> float:
        """Grid spacing ``epsilon = (high - low) / (kappa - 1)``."""
        if self._num_arms == 1:
            return self._high - self._low
        return (self._high - self._low) / (self._num_arms - 1)

    @property
    def interval(self) -> Tuple[float, float]:
        """The continuous interval ``Z``."""
        return (self._low, self._high)

    def value(self, arm: int) -> float:
        """Value of the arm with index `arm`."""
        if not 0 <= arm < self._num_arms:
            raise ConfigurationError(
                f"arm index {arm} out of range [0, {self._num_arms})")
        return float(self._values[arm])

    def nearest_arm(self, x: float) -> int:
        """Index of the grid point closest to a continuous value."""
        return int(np.argmin(np.abs(self._values - x)))

    def discretization_error_bound(self, lipschitz_eta: float) -> float:
        """``DE(Z') <= eta * epsilon`` (Eq. 25).

        Args:
            lipschitz_eta: the constant ``eta`` of Eq. (21).
        """
        if lipschitz_eta < 0:
            raise ConfigurationError(
                f"eta must be >= 0, got {lipschitz_eta}")
        return lipschitz_eta * self.epsilon

    def indices(self) -> List[int]:
        """All arm indices, ascending."""
        return list(range(self._num_arms))

    def __len__(self) -> int:
        return self._num_arms

    def __repr__(self) -> str:
        return (f"ArmGrid([{self._low}, {self._high}], "
                f"kappa={self._num_arms}, eps={self.epsilon:.4g})")
