"""Successive elimination over a finite arm set (Algorithm 3, lines 5-9).

Every arm starts *active*.  Each round the policy plays active arms
(round-robin over the least-played active arms so confidence intervals
shrink uniformly), maintains per-arm empirical means with confidence
radius ``r_t(a) = scale * sqrt(2 log T / n_a)``, and **deactivates** any
arm ``a`` dominated by another arm ``a'`` in the sense
``UCB_t(a) < LCB_t(a')``.  The exploitation choice - "the active arm
with the maximum reward" (Algorithm 3 line 9) - is
:meth:`SuccessiveElimination.best_active_arm`.

With the radius above, standard analysis (Slivkins [25], Sec. 1.3)
gives regret ``O(sqrt(K T log T))`` against the best fixed arm, the
``R_S(T)`` term of Theorem 3.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..exceptions import BanditError, ConfigurationError
from ..telemetry import get_tracer


class SuccessiveElimination:
    """Successive-elimination policy over ``num_arms`` arms.

    Args:
        num_arms: size of the arm set ``Z'``.
        horizon: the time horizon ``T`` entering the confidence radius;
            when unknown, pass an upper bound (radius is conservative).
        confidence_scale: multiplier on the radius; 1.0 is the textbook
            value for rewards in [0, 1].
    """

    def __init__(self, num_arms: int, horizon: int,
                 confidence_scale: float = 1.0) -> None:
        if num_arms < 1:
            raise ConfigurationError(
                f"need at least one arm, got {num_arms}")
        if horizon < 1:
            raise ConfigurationError(
                f"horizon must be >= 1, got {horizon}")
        if confidence_scale <= 0:
            raise ConfigurationError(
                f"confidence_scale must be positive, got {confidence_scale}")
        self._num_arms = num_arms
        self._horizon = horizon
        self._scale = confidence_scale
        self._counts = np.zeros(num_arms, dtype=int)
        self._sums = np.zeros(num_arms, dtype=float)
        self._active = np.ones(num_arms, dtype=bool)
        self._total_plays = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def num_arms(self) -> int:
        """Size of the arm set."""
        return self._num_arms

    @property
    def total_plays(self) -> int:
        """Total rewards recorded so far."""
        return self._total_plays

    def active_arms(self) -> List[int]:
        """Indices of still-active arms."""
        return [int(a) for a in np.flatnonzero(self._active)]

    def is_active(self, arm: int) -> bool:
        """Whether one arm is still active."""
        self._check_arm(arm)
        return bool(self._active[arm])

    def count(self, arm: int) -> int:
        """Times an arm has been played."""
        self._check_arm(arm)
        return int(self._counts[arm])

    def mean(self, arm: int) -> float:
        """Empirical mean reward ``ER_t(a)`` (0.0 before any play)."""
        self._check_arm(arm)
        if self._counts[arm] == 0:
            return 0.0
        return float(self._sums[arm] / self._counts[arm])

    def radius(self, arm: int) -> float:
        """Confidence radius ``r_t(a)``; infinite before any play."""
        self._check_arm(arm)
        n = self._counts[arm]
        if n == 0:
            return math.inf
        return self._scale * math.sqrt(
            2.0 * math.log(max(self._horizon, 2)) / n)

    def ucb(self, arm: int) -> float:
        """``UCB_t(a) = ER_t(a) + r_t(a)``."""
        return self.mean(arm) + self.radius(arm)

    def lcb(self, arm: int) -> float:
        """``LCB_t(a) = ER_t(a) - r_t(a)``."""
        return self.mean(arm) - self.radius(arm)

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def select_arm(self) -> int:
        """Next arm to *explore*: the least-played active arm.

        Playing active arms in possibly multiple rounds (Algorithm 3
        line 5) reduces to always topping up the arm with the fewest
        samples; ties break toward the lowest index.
        """
        active = self.active_arms()
        if not active:
            raise BanditError("every arm has been eliminated")
        return min(active, key=lambda a: (self._counts[a], a))

    def best_active_arm(self) -> int:
        """The active arm with the maximum empirical reward (line 9).

        Unplayed arms (mean 0) rank below any played arm with positive
        mean; ties break toward the lowest index.
        """
        active = self.active_arms()
        if not active:
            raise BanditError("every arm has been eliminated")
        return max(active, key=lambda a: (self.mean(a), -a))

    def record(self, arm: int, reward: float) -> None:
        """Record an observed reward for an arm and run eliminations.

        Rewards outside [0, 1] are accepted (the caller may normalize);
        the confidence radius is calibrated for [0, 1].

        Raises:
            BanditError: when recording to an eliminated arm.
        """
        self._check_arm(arm)
        if not self._active[arm]:
            raise BanditError(f"arm {arm} has been eliminated")
        self._counts[arm] += 1
        self._sums[arm] += float(reward)
        self._total_plays += 1
        self._eliminate_dominated()

    def _eliminate_dominated(self) -> None:
        """Deactivate arms with ``UCB_t(a) < LCB_t(a')`` for some a'.

        Never eliminates the last active arm (the paper keeps at least
        one arm as the running threshold).
        """
        active = self.active_arms()
        if len(active) <= 1:
            return
        best_lcb = max(self.lcb(a) for a in active)
        survivors = [a for a in active if self.ucb(a) >= best_lcb]
        if not survivors:
            # Numerically impossible for the maximizer itself, but be
            # safe: keep the best empirical arm.
            survivors = [self.best_active_arm()]
        eliminated = set(active) - set(survivors)
        if eliminated:
            get_tracer().count("arm_eliminations", len(eliminated))
        for arm in eliminated:
            self._active[arm] = False

    def _check_arm(self, arm: int) -> None:
        if not 0 <= arm < self._num_arms:
            raise ConfigurationError(
                f"arm index {arm} out of range [0, {self._num_arms})")

    def __repr__(self) -> str:
        return (f"SuccessiveElimination(arms={self._num_arms}, "
                f"active={len(self.active_arms())}, "
                f"plays={self._total_plays})")
