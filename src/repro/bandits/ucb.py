"""UCB1 - the classical optimism-in-face-of-uncertainty policy.

Included as a drop-in comparison/ablation for the successive
elimination policy of Algorithm 3: both expose the same
``select_arm`` / ``record`` / ``best_active_arm`` surface, so
:class:`~repro.bandits.lipschitz.LipschitzBandit` and DynamicRR can run
on either.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..exceptions import ConfigurationError


class UCB1:
    """UCB1 of Auer et al.; plays ``argmax_a mean(a) + sqrt(2 ln t / n_a)``.

    Args:
        num_arms: size of the arm set.
        confidence_scale: multiplier on the exploration bonus.
    """

    def __init__(self, num_arms: int,
                 confidence_scale: float = 1.0) -> None:
        if num_arms < 1:
            raise ConfigurationError(
                f"need at least one arm, got {num_arms}")
        if confidence_scale <= 0:
            raise ConfigurationError(
                f"confidence_scale must be positive, got {confidence_scale}")
        self._num_arms = num_arms
        self._scale = confidence_scale
        self._counts = np.zeros(num_arms, dtype=int)
        self._sums = np.zeros(num_arms, dtype=float)
        self._total_plays = 0

    @property
    def num_arms(self) -> int:
        """Size of the arm set."""
        return self._num_arms

    @property
    def total_plays(self) -> int:
        """Total rewards recorded."""
        return self._total_plays

    def active_arms(self) -> List[int]:
        """UCB1 never eliminates arms; all arms stay active."""
        return list(range(self._num_arms))

    def count(self, arm: int) -> int:
        """Times an arm has been played."""
        self._check_arm(arm)
        return int(self._counts[arm])

    def mean(self, arm: int) -> float:
        """Empirical mean reward (0.0 before any play)."""
        self._check_arm(arm)
        if self._counts[arm] == 0:
            return 0.0
        return float(self._sums[arm] / self._counts[arm])

    def ucb(self, arm: int) -> float:
        """The UCB1 index; infinite for unplayed arms."""
        self._check_arm(arm)
        if self._counts[arm] == 0:
            return math.inf
        bonus = self._scale * math.sqrt(
            2.0 * math.log(max(self._total_plays, 2)) / self._counts[arm])
        return self.mean(arm) + bonus

    def select_arm(self) -> int:
        """The arm with the largest UCB index (unplayed arms first)."""
        return max(range(self._num_arms),
                   key=lambda a: (self.ucb(a), -a))

    def best_active_arm(self) -> int:
        """The arm with the best empirical mean (exploitation choice)."""
        if self._total_plays == 0:
            return 0
        return max(range(self._num_arms),
                   key=lambda a: (self.mean(a), -a))

    def record(self, arm: int, reward: float) -> None:
        """Record an observed reward."""
        self._check_arm(arm)
        self._counts[arm] += 1
        self._sums[arm] += float(reward)
        self._total_plays += 1

    def _check_arm(self, arm: int) -> None:
        if not 0 <= arm < self._num_arms:
            raise ConfigurationError(
                f"arm index {arm} out of range [0, {self._num_arms})")

    def __repr__(self) -> str:
        return f"UCB1(arms={self._num_arms}, plays={self._total_plays})"
