"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes separate the three broad failure domains: bad user input,
solver-level failures, and simulation/scheduling inconsistencies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent.

    Raised eagerly at object construction time so that a bad parameter
    never propagates into a long-running simulation.
    """


class InfeasibleProblemError(ReproError):
    """A linear or integer program has no feasible solution."""


class UnboundedProblemError(ReproError):
    """A linear program is unbounded in the optimization direction."""


class SolverError(ReproError):
    """The solver failed for a reason other than infeasibility.

    Examples: iteration limit exceeded, numerical breakdown, or an
    unknown backend name.
    """


class CapacityError(ReproError):
    """An assignment would exceed a base station's computing capacity."""


class SchedulingError(ReproError):
    """The simulation engine detected an inconsistent scheduling state.

    For example: completing a request twice, or admitting a request
    before its arrival slot.
    """


class InvariantViolation(ReproError):
    """A journaled decision stream broke one of the paper's invariants.

    Raised by :class:`repro.telemetry.audit.InvariantMonitor` in
    ``strict`` mode the moment a checked invariant fails - e.g. a slot
    admission oversubscribing a station, a request completing twice,
    or an eliminated bandit arm being replayed.  The ``violation``
    attribute carries the structured finding.
    """

    def __init__(self, violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class BanditError(ReproError):
    """A multi-armed bandit policy was used incorrectly.

    For example: recording a reward for an arm that was never selected,
    or asking for an arm after every arm has been eliminated.
    """
