"""JSON serialization of instances and results.

Reproducibility artifacts: a :class:`~repro.core.instance.ProblemInstance`
(topology + delays + capacities) and a
:class:`~repro.core.assignment.ScheduleResult` can be written to JSON
and reloaded bit-exactly, so an experiment's exact network and its
outcome can be archived next to the CSVs.

The format is versioned; loading rejects unknown versions rather than
guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import networkx as nx

from .config import (NetworkConfig, OnlineConfig, RequestConfig,
                     SimulationConfig)
from .core.assignment import OffloadDecision, ScheduleResult
from .core.instance import ProblemInstance
from .core.latency import LatencyModel
from .exceptions import ConfigurationError
from .network.paths import PathTable
from .network.topology import BaseStation, MECNetwork

PathLike = Union[str, Path]

#: Current schema version of the artifacts.
FORMAT_VERSION = 1


def _check_version(payload: Dict[str, Any], kind: str) -> None:
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    if payload.get("kind") != kind:
        raise ConfigurationError(
            f"expected a {kind!r} artifact, got {payload.get('kind')!r}")


# ----------------------------------------------------------------------
# SimulationConfig
# ----------------------------------------------------------------------
def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """Serialize a configuration (plain dict of primitives)."""
    return {
        "network": {
            "num_base_stations": config.network.num_base_stations,
            "capacity_range_mhz": list(config.network.capacity_range_mhz),
            "slot_size_mhz": config.network.slot_size_mhz,
            "waxman_alpha": config.network.waxman_alpha,
            "waxman_beta": config.network.waxman_beta,
            "link_delay_range_ms": list(
                config.network.link_delay_range_ms),
        },
        "requests": {
            "num_requests": config.requests.num_requests,
            "data_rate_range_mbps": list(
                config.requests.data_rate_range_mbps),
            "num_rate_levels": config.requests.num_rate_levels,
            "rate_decay": config.requests.rate_decay,
            "tasks_range": list(config.requests.tasks_range),
            "c_unit_mhz_per_mbps": config.requests.c_unit_mhz_per_mbps,
            "reward_unit_range": list(config.requests.reward_unit_range),
            "deadline_ms": config.requests.deadline_ms,
            "proc_delay_range_ms": list(
                config.requests.proc_delay_range_ms),
            "stream_duration_slots": config.requests.stream_duration_slots,
        },
        "online": {
            "horizon_slots": config.online.horizon_slots,
            "slot_length_ms": config.online.slot_length_ms,
            "threshold_range_mhz": list(
                config.online.threshold_range_mhz),
            "num_arms": config.online.num_arms,
            "confidence_scale": config.online.confidence_scale,
        },
        "seed": config.seed,
    }


def config_from_dict(payload: Dict[str, Any]) -> SimulationConfig:
    """Deserialize a configuration (validated)."""
    net = dict(payload["network"])
    req = dict(payload["requests"])
    onl = dict(payload["online"])
    for mapping, keys in ((net, ("capacity_range_mhz",
                                 "link_delay_range_ms")),
                          (req, ("data_rate_range_mbps", "tasks_range",
                                 "reward_unit_range",
                                 "proc_delay_range_ms")),
                          (onl, ("threshold_range_mhz",))):
        for key in keys:
            mapping[key] = tuple(mapping[key])
    return SimulationConfig(
        network=NetworkConfig(**net),
        requests=RequestConfig(**req),
        online=OnlineConfig(**onl),
        seed=payload["seed"],
    ).validate()


# ----------------------------------------------------------------------
# ProblemInstance
# ----------------------------------------------------------------------
def save_instance(instance: ProblemInstance, path: PathLike) -> Path:
    """Write an instance (topology + delays + config) to JSON."""
    payload = {
        "version": FORMAT_VERSION,
        "kind": "instance",
        "config": config_to_dict(instance.config),
        "slot_size_mhz": instance.network.slot_size_mhz,
        "stations": [
            {
                "id": bs.station_id,
                "capacity_mhz": bs.capacity_mhz,
                "position": list(bs.position),
                "base_delay_ms": instance.latency.station_base_delay_ms(
                    bs.station_id),
            }
            for bs in instance.network
        ],
        "links": [
            {"u": u, "v": v,
             "delay_ms": instance.network.link_delay_ms(u, v)}
            for u, v in sorted(instance.network.graph.edges)
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_instance(path: PathLike) -> ProblemInstance:
    """Reload an instance written by :func:`save_instance`."""
    payload = json.loads(Path(path).read_text())
    _check_version(payload, "instance")
    config = config_from_dict(payload["config"])

    graph = nx.Graph()
    stations = []
    base_delays = {}
    for entry in payload["stations"]:
        stations.append(BaseStation(
            station_id=entry["id"],
            capacity_mhz=entry["capacity_mhz"],
            position=tuple(entry["position"])))
        graph.add_node(entry["id"])
        base_delays[entry["id"]] = entry["base_delay_ms"]
    for link in payload["links"]:
        graph.add_edge(link["u"], link["v"], delay_ms=link["delay_ms"])
    network = MECNetwork(stations=stations, graph=graph,
                         slot_size_mhz=payload["slot_size_mhz"])
    paths = PathTable(network)
    latency = LatencyModel(
        network, paths,
        proc_delay_range_ms=config.requests.proc_delay_range_ms, rng=0)
    # Overwrite the randomly drawn base delays with the saved ones.
    latency.restore_base_delays(base_delays)
    return ProblemInstance(network=network, paths=paths,
                           latency=latency, config=config)


# ----------------------------------------------------------------------
# ScheduleResult
# ----------------------------------------------------------------------
def save_result(result: ScheduleResult, path: PathLike) -> Path:
    """Write a schedule result to JSON."""
    payload = {
        "version": FORMAT_VERSION,
        "kind": "result",
        "algorithm": result.algorithm,
        "runtime_s": result.runtime_s,
        "decisions": [
            {
                "request_id": d.request_id,
                "admitted": d.admitted,
                "primary_station": d.primary_station,
                "migrated_tasks": {str(k): v
                                   for k, v in d.migrated_tasks.items()},
                "realized_rate_mbps": d.realized_rate_mbps,
                "reward": d.reward,
                "latency_ms": d.latency_ms,
                "waiting_ms": d.waiting_ms,
                "deadline_met": d.deadline_met,
            }
            for d in result.decisions.values()
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_result(path: PathLike) -> ScheduleResult:
    """Reload a schedule result written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    _check_version(payload, "result")
    result = ScheduleResult(algorithm=payload["algorithm"])
    result.runtime_s = payload["runtime_s"]
    for entry in payload["decisions"]:
        result.add(OffloadDecision(
            request_id=entry["request_id"],
            admitted=entry["admitted"],
            primary_station=entry["primary_station"],
            migrated_tasks={int(k): v
                            for k, v in entry["migrated_tasks"].items()},
            realized_rate_mbps=entry["realized_rate_mbps"],
            reward=entry["reward"],
            latency_ms=entry["latency_ms"],
            waiting_ms=entry["waiting_ms"],
            deadline_met=entry["deadline_met"],
        ))
    return result
