"""**Greedy** baseline (Yang et al. [32]).

"The algorithm sorts tasks in a decreasing order according to their
execution times, and assigns the task to the optimal edge server
one-by-one."  Interpretation, as in the paper's comparison: requests
are ordered by expected execution time (pipeline compute weight x
expected rate - the heaviest streams first) and each is placed on the
*optimal* edge server in the latency sense - the feasible station with
the smallest transfer + processing delay whose expected free capacity
covers the request's expected demand.

The result is the paper's observed behaviour: very low latency (every
request runs on its fastest station) but poor reward - the fast
stations congest, expected-demand packing leaves no headroom for
realized rates, and the reward distribution is never consulted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.assignment import ScheduleResult
from ..core.instance import ProblemInstance
from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike
from .base import (OnlineBaselinePolicy, admit_sequential,
                   expected_feasible_stations)


def _execution_time_key(instance: ProblemInstance,
                        request: ARRequest) -> float:
    """Expected execution time proxy: compute weight x expected rate."""
    return (request.pipeline.total_compute_weight
            * request.expected_rate_mbps)


def _greedy_order(instance: ProblemInstance,
                  requests: Sequence[ARRequest]) -> List[ARRequest]:
    """Decreasing execution time (ties by id for determinism)."""
    return sorted(requests,
                  key=lambda r: (-_execution_time_key(instance, r),
                                 r.request_id))


def _min_latency_station(instance: ProblemInstance, request: ARRequest,
                         ledger: CapacityLedger) -> Optional[int]:
    """The *optimal* (lowest-latency) station - or nothing.

    [32]'s greedy assigns each task to "the optimal edge server"; it
    has no global fallback - when the optimal server lacks room the
    request is rejected, even though distant servers may be idle.  The
    paper attributes Greedy's low reward to exactly this local view
    ("they utilize a local strategy instead of considering the global
    optimal solution").
    """
    feasible = instance.latency.feasible_stations(request)
    if not feasible:
        return None
    best = min(feasible, key=lambda sid: (
        instance.latency.placement_delay_ms(request, sid), sid))
    if not ledger.fits(best, request.expected_demand_mhz):
        return None
    return best


class GreedyOffline:
    """Batch version of the Greedy baseline."""

    name = "Greedy"

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng: RngLike = None) -> ScheduleResult:
        """Place requests heaviest-first onto their fastest stations."""
        ordered = _greedy_order(instance, requests)
        return admit_sequential(self.name, instance, ordered,
                                _min_latency_station, rng=rng)


class GreedyOnline(OnlineBaselinePolicy):
    """Slotted version: same rule applied to the pending queue."""

    name = "Greedy"

    def order(self, slot: int,
              pending: Sequence[ARRequest]) -> List[ARRequest]:
        engine = self._engine
        assert engine is not None
        return _greedy_order(engine.instance, pending)

    def pick_station(self, request: ARRequest,
                     planned_mhz) -> Optional[int]:
        engine = self._engine
        assert engine is not None
        feasible = [
            sid for sid in engine.instance.network.station_ids
            if self._deadline_ok(request, sid, self._slot)
        ]
        if not feasible:
            return None
        best = min(feasible, key=lambda sid: (
            engine.instance.latency.placement_delay_ms(request, sid), sid))
        if self._free_for(best, planned_mhz) < request.expected_demand_mhz:
            return None  # optimal server full: wait, no fallback
        return best
