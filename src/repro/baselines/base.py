"""Shared machinery for the baseline algorithms.

All three baselines share one *physics*: requests are considered in an
algorithm-specific order, each picks a station by an algorithm-specific
rule using **expected** demands (the baselines do not model
uncertainty), the data rate is realized at admission, the realized
demand is reserved (truncated at capacity), and - as everywhere in this
reproduction - the reward is earned only if the realized demand fully
fit the station's remaining capacity.  This keeps the uncertainty
penalty identical across all algorithms; what differs is only how
carefully each algorithm leaves room for it.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from ..core.assignment import OffloadDecision, ScheduleResult
from ..core.instance import ProblemInstance
from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng

#: Picks a station for a request given the current ledger, or None to
#: reject.  Receives (instance, request, ledger).
StationChooser = Callable[[ProblemInstance, ARRequest, CapacityLedger],
                          Optional[int]]


def expected_feasible_stations(instance: ProblemInstance,
                               request: ARRequest,
                               ledger: CapacityLedger,
                               waiting_ms: float = 0.0) -> List[int]:
    """Stations meeting the deadline with room for the expected demand.

    This is the admission view of a baseline: it believes the expected
    demand and checks the latency requirement (Eq. 1) for the placement.
    """
    demand = request.expected_demand_mhz
    return [sid
            for sid in instance.latency.feasible_stations(request,
                                                          waiting_ms)
            if ledger.fits(sid, demand)]


def admit_sequential(algorithm_name: str,
                     instance: ProblemInstance,
                     ordered_requests: Sequence[ARRequest],
                     choose_station: StationChooser,
                     rng: RngLike = None) -> ScheduleResult:
    """Run the shared sequential admission loop.

    Args:
        algorithm_name: label for the result.
        instance: the problem instance.
        ordered_requests: requests in the algorithm's processing order.
        choose_station: the algorithm's placement rule.
        rng: randomness for rate realization.

    Returns:
        A :class:`ScheduleResult` with one decision per request.
    """
    rng = ensure_rng(rng)
    start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    result = ScheduleResult(algorithm=algorithm_name)
    ledger = instance.new_ledger()
    for request in ordered_requests:
        station_id = choose_station(instance, request, ledger)
        if station_id is None:
            result.add(OffloadDecision(request_id=request.request_id))
            continue
        rate, reward_value = request.realize(rng)
        demand = request.demand_of_rate_mhz(rate)
        free = ledger.free_mhz(station_id)
        reserved = min(demand, free)
        if reserved > 0:
            ledger.reserve(request.request_id, station_id, reserved)
        earned = reward_value if demand <= free + 1e-9 else 0.0
        latency = instance.latency.total_delay_ms(request, station_id)
        result.add(OffloadDecision(
            request_id=request.request_id,
            admitted=True,
            primary_station=station_id,
            realized_rate_mbps=rate,
            reward=earned,
            latency_ms=latency,
            waiting_ms=0.0,
            deadline_met=latency <= request.deadline_ms + 1e-9,
        ))
    result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
    return result


class OnlineBaselinePolicy:
    """Base class for the online versions of the baselines.

    Subclasses implement :meth:`order` (the per-slot processing order)
    and :meth:`pick_station` (the placement rule given the engine's
    live occupancy view).  Placement is immediate and greedy - these
    baselines never hold a placeable request back, which is what gives
    them their low waiting times (and their congestion problems).
    """

    name = "OnlineBaseline"

    def __init__(self) -> None:
        self._engine = None
        self._slot = 0

    def begin(self, engine) -> None:
        """Keep the engine view."""
        self._engine = engine

    def order(self, slot: int,
              pending: Sequence[ARRequest]) -> List[ARRequest]:
        """The processing order for this slot (subclass hook)."""
        raise NotImplementedError

    def pick_station(self, request: ARRequest,
                     planned_mhz) -> Optional[int]:
        """The placement rule (subclass hook).

        Args:
            request: the candidate.
            planned_mhz: station id -> demand already planned this slot
                (on top of the engine's active demand).
        """
        raise NotImplementedError

    def schedule(self, slot: int, pending: Sequence[ARRequest]) -> List:
        """Greedy immediate placement of every request that fits."""
        from ..sim.online_engine import Placement  # local: avoid cycle

        engine = self._engine
        assert engine is not None
        self._slot = slot
        placements = []
        planned = {sid: 0.0 for sid in engine.instance.network.station_ids}
        for request in self.order(slot, pending):
            station_id = self.pick_station(request, planned)
            if station_id is None:
                continue
            planned[station_id] += request.expected_demand_mhz
            placements.append(Placement(request_id=request.request_id,
                                        station_id=station_id))
        return placements

    def observe(self, slot: int, slot_reward: float) -> None:
        """Baselines do not learn from feedback."""

    # Shared helpers ----------------------------------------------------
    def _free_for(self, station_id: int, planned_mhz) -> float:
        """Free capacity net of both active and this-slot-planned demand."""
        engine = self._engine
        assert engine is not None
        return engine.free_mhz(station_id) - planned_mhz.get(station_id, 0.0)

    def _deadline_ok(self, request: ARRequest, station_id: int,
                     slot: int) -> bool:
        engine = self._engine
        assert engine is not None
        waiting = engine.waiting_ms(request, slot)
        latency = engine.instance.latency.total_delay_ms(
            request, station_id, waiting)
        return latency <= request.deadline_ms + 1e-9
