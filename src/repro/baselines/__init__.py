"""Reimplementations of the paper's comparison algorithms.

Section VI-A compares against three prior algorithms, each implemented
in offline (batch) and online (slotted) versions, exactly as the paper
does:

* **OCORP** (Liu et al. [20]) - online-convex-optimization-flavoured
  job scheduling: sort by arrival time and remaining to-be-processed
  data, then best-fit packing onto edge servers.
* **Greedy** (Yang et al. [32]) - sort tasks by execution time in
  decreasing order and assign each to its optimal (lowest-latency)
  edge server one by one.
* **HeuKKT** (Ma et al. [21]) - drop the capacity constraints to find
  the workload offloaded to the remote cloud, then schedule the edge
  share by the KKT conditions (load proportional to capacity).

All three are *reward-oblivious* and *uncertainty-oblivious*: they
pack by expected demand and never look at the (rate, reward)
distribution - which is precisely the behaviour the paper's evaluation
contrasts with Appro/Heu/DynamicRR.
"""

from .base import admit_sequential
from .greedy import GreedyOffline, GreedyOnline
from .ocorp import OcorpOffline, OcorpOnline
from .heukkt import HeuKktOffline, HeuKktOnline
from .random_placement import RandomOffline, RandomOnline

__all__ = [
    "admit_sequential",
    "GreedyOffline",
    "GreedyOnline",
    "OcorpOffline",
    "OcorpOnline",
    "HeuKktOffline",
    "HeuKktOnline",
    "RandomOffline",
    "RandomOnline",
]
