"""Random placement - the sanity-floor baseline.

Not in the paper's comparison set, but indispensable for testing and
calibration: any algorithm that cannot beat uniform-random placement on
a saturated workload is broken.  Offline and online versions follow the
same machinery as the other baselines (expected-demand admission,
realize-at-schedule, reward-iff-fits).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


from ..core.assignment import ScheduleResult
from ..core.instance import ProblemInstance
from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from .base import (OnlineBaselinePolicy, admit_sequential,
                   expected_feasible_stations)


class RandomOffline:
    """Batch random placement.

    Args:
        rng: placement randomness (separate from the executor's
            realization stream so results stay reproducible).
    """

    name = "Random"

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng: RngLike = None) -> ScheduleResult:
        """Place each request on a uniform random feasible station."""
        placement_rng = self._rng

        def choose(instance_: ProblemInstance, request: ARRequest,
                   ledger: CapacityLedger) -> Optional[int]:
            candidates = expected_feasible_stations(instance_, request,
                                                    ledger)
            if not candidates:
                return None
            return int(placement_rng.choice(candidates))

        ordered = sorted(requests, key=lambda r: r.request_id)
        return admit_sequential(self.name, instance, ordered, choose,
                                rng=rng)


class RandomOnline(OnlineBaselinePolicy):
    """Slotted random placement."""

    name = "Random"

    def __init__(self, rng: RngLike = None) -> None:
        super().__init__()
        self._rng = ensure_rng(rng)

    def order(self, slot: int,
              pending: Sequence[ARRequest]) -> List[ARRequest]:
        return sorted(pending, key=lambda r: r.request_id)

    def pick_station(self, request: ARRequest,
                     planned_mhz) -> Optional[int]:
        engine = self._engine
        assert engine is not None
        demand = request.expected_demand_mhz
        candidates = [
            sid for sid in engine.instance.network.station_ids
            if self._free_for(sid, planned_mhz) >= demand
            and self._deadline_ok(request, sid, self._slot)
        ]
        if not candidates:
            return None
        return int(self._rng.choice(candidates))
