"""**HeuKKT** baseline (Ma et al. [21]).

"The algorithm first removes the constraints of resource capacities to
find the workload offloaded to the remote cloud.  It then finds the
optimal scheduling solutions in edge servers fitting Karush-Kuhn-Tucker
(KKT) conditions with resource constraints."

Reproduction: minimizing the sum of quadratic congestion costs
``sum_i load_i^2 / C_i`` subject to serving the edge share has the KKT
solution *load proportional to capacity*, so the placement rule picks
the feasible station with the lowest utilization ratio (occupied /
capacity).  Requests beyond the edge's expected capacity are the
"cloud workload": they are served remotely - the round trip to the
remote cloud (``CLOUD_RTT_MS``) blows the 200 ms AR deadline, so cloud
requests count as admitted with high latency and zero reward, exactly
the reward/latency profile Fig. 3 shows for HeuKKT (reward close to the
proposed algorithms, latency among the highest).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.assignment import OffloadDecision, ScheduleResult
from ..core.instance import ProblemInstance
from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from ..telemetry import get_tracer
from .base import OnlineBaselinePolicy, expected_feasible_stations

#: Round-trip-plus-processing latency of the remote cloud path (ms).
#: Edge-vs-cloud measurement studies put wide-area RTT + data-center
#: queueing for AR-sized frames well above the 200 ms AR budget.
CLOUD_RTT_MS = 320.0

#: The response-time-optimal edge utilization target.  [21] minimizes
#: response time; with congestion-dependent service delay the KKT
#: stationarity point balances edge queueing against the cloud path and
#: never drives utilization to 1 - load beyond this fraction of each
#: server's capacity is the "workload offloaded to the remote cloud".
EDGE_UTIL_TARGET = 0.75


def _kkt_station(instance: ProblemInstance, request: ARRequest,
                 ledger: CapacityLedger) -> Optional[int]:
    """Feasible station with the lowest utilization (KKT balance).

    Placement keeps every station's planned utilization at or below
    :data:`EDGE_UTIL_TARGET`; a request that would push its best
    candidate beyond the target belongs to the cloud share.
    """
    def utilization_after(sid: int) -> float:
        capacity = instance.network.station(sid).capacity_mhz
        return ((ledger.occupied_mhz(sid) + request.expected_demand_mhz)
                / capacity)

    candidates = [
        sid for sid in expected_feasible_stations(instance, request, ledger)
        if utilization_after(sid) <= EDGE_UTIL_TARGET + 1e-9
    ]
    if not candidates:
        return None
    capacity_of = instance.network.station
    return min(candidates, key=lambda sid: (
        ledger.occupied_mhz(sid) / capacity_of(sid).capacity_mhz, sid))


class HeuKktOffline:
    """Batch version of the HeuKKT baseline (with cloud spillover)."""

    name = "HeuKKT"

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng: RngLike = None) -> ScheduleResult:
        """KKT-balance the edge; spill the remainder to the cloud."""
        rng = ensure_rng(rng)
        start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        result = ScheduleResult(algorithm=self.name)
        ledger = instance.new_ledger()
        ordered = sorted(requests, key=lambda r: r.request_id)
        for request in ordered:
            station_id = _kkt_station(instance, request, ledger)
            if station_id is None:
                self._serve_from_cloud(request, result, rng)
                continue
            rate, reward_value = request.realize(rng)
            demand = request.demand_of_rate_mhz(rate)
            free = ledger.free_mhz(station_id)
            reserved = min(demand, free)
            if reserved > 0:
                ledger.reserve(request.request_id, station_id, reserved)
            earned = reward_value if demand <= free + 1e-9 else 0.0
            latency = instance.latency.total_delay_ms(request, station_id)
            result.add(OffloadDecision(
                request_id=request.request_id,
                admitted=True,
                primary_station=station_id,
                realized_rate_mbps=rate,
                reward=earned,
                latency_ms=latency,
                deadline_met=latency <= request.deadline_ms + 1e-9,
            ))
        result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
        return result

    @staticmethod
    def _serve_from_cloud(request: ARRequest, result: ScheduleResult,
                          rng) -> None:
        """The removed-capacity share: served remotely, reward lost."""
        get_tracer().count("cloud_served")
        request.realize(rng)
        result.add(OffloadDecision(
            request_id=request.request_id,
            admitted=True,
            primary_station=None,
            realized_rate_mbps=request.realized_rate_mbps,
            reward=0.0,
            latency_ms=CLOUD_RTT_MS,
            deadline_met=CLOUD_RTT_MS <= request.deadline_ms,
        ))


class HeuKktOnline(OnlineBaselinePolicy):
    """Slotted version: KKT-balanced edge placement, cloud spillover.

    Mirrors the offline split: a request whose best candidate would
    exceed the response-time-optimal edge utilization belongs to the
    cloud share and is dispatched to the remote cloud *immediately*
    (the algorithm computes the cloud workload first - it does not hold
    cloud-bound requests back hoping for edge capacity).
    """

    name = "HeuKKT"

    def schedule(self, slot: int, pending: Sequence) -> List:
        """Edge placements plus immediate cloud spill."""
        from ..sim.online_engine import CLOUD_STATION, Placement

        placements = super().schedule(slot, pending)
        placed = {p.request_id for p in placements}
        for request in pending:
            if request.request_id not in placed:
                placements.append(Placement(
                    request_id=request.request_id,
                    station_id=CLOUD_STATION))
        return placements

    def order(self, slot: int,
              pending: Sequence[ARRequest]) -> List[ARRequest]:
        return sorted(pending, key=lambda r: (r.arrival_slot,
                                              r.request_id))

    def pick_station(self, request: ARRequest,
                     planned_mhz) -> Optional[int]:
        engine = self._engine
        assert engine is not None
        demand = request.expected_demand_mhz

        def utilization(sid: int) -> float:
            capacity = engine.instance.network.station(sid).capacity_mhz
            used = (capacity - engine.free_mhz(sid)
                    + planned_mhz.get(sid, 0.0))
            return used / capacity

        def utilization_after(sid: int) -> float:
            capacity = engine.instance.network.station(sid).capacity_mhz
            return utilization(sid) + demand / capacity

        candidates = [
            sid for sid in engine.instance.network.station_ids
            if self._free_for(sid, planned_mhz) >= demand
            and utilization_after(sid) <= EDGE_UTIL_TARGET + 1e-9
            and self._deadline_ok(request, sid, self._slot)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda sid: (utilization(sid), sid))
