"""**OCORP** baseline (Liu et al. [20]).

"In each time slot, algorithm OCORP sorts the unfinished jobs according
to arriving time and remaining to-be-processed data, then assigns tasks
to edge servers based on a best-fit algorithm."

Offline (all arrivals at slot 0) the order reduces to increasing
expected stream volume; placement is classic best-fit packing - the
feasible station whose free capacity exceeds the expected demand by the
*smallest* margin.  Best-fit keeps stations tightly packed, which is
great for deterministic demands and exactly wrong for uncertain ones:
a station packed to its expected capacity overflows on roughly half of
the realizations, forfeiting those rewards.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.assignment import ScheduleResult
from ..core.instance import ProblemInstance
from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike
from .base import (OnlineBaselinePolicy, admit_sequential,
                   expected_feasible_stations)


def _ocorp_order(requests: Sequence[ARRequest]) -> List[ARRequest]:
    """Arrival time, then remaining (expected) data, then id."""
    return sorted(requests, key=lambda r: (r.arrival_slot,
                                           r.expected_rate_mbps
                                           * r.stream_duration_slots,
                                           r.request_id))


#: OCORP's local view: each job only considers this many nearest (by
#: placement delay) edge servers.  [20] schedules within a local server
#: cluster; the paper's Fig. 4 discussion attributes OCORP's behaviour
#: to "a local strategy instead of considering the global optimal
#: solution".
LOCAL_CANDIDATES = 2


def _local_candidates(instance: ProblemInstance,
                      request: ARRequest) -> List[int]:
    """The request's nearest deadline-feasible stations."""
    feasible = instance.latency.feasible_stations(request)
    return feasible[:LOCAL_CANDIDATES]


def _best_fit_station(instance: ProblemInstance, request: ARRequest,
                      ledger: CapacityLedger) -> Optional[int]:
    """Best-fit among the request's local candidate stations."""
    candidates = [sid for sid in _local_candidates(instance, request)
                  if ledger.fits(sid, request.expected_demand_mhz)]
    if not candidates:
        return None
    return min(candidates, key=lambda sid: (ledger.free_mhz(sid), sid))


class OcorpOffline:
    """Batch version of the OCORP baseline."""

    name = "OCORP"

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng: RngLike = None) -> ScheduleResult:
        """Best-fit pack requests in (arrival, size) order."""
        ordered = _ocorp_order(requests)
        return admit_sequential(self.name, instance, ordered,
                                _best_fit_station, rng=rng)


class OcorpOnline(OnlineBaselinePolicy):
    """Slotted version: best-fit the pending queue every slot."""

    name = "OCORP"

    def order(self, slot: int,
              pending: Sequence[ARRequest]) -> List[ARRequest]:
        return _ocorp_order(pending)

    def pick_station(self, request: ARRequest,
                     planned_mhz) -> Optional[int]:
        engine = self._engine
        assert engine is not None
        demand = request.expected_demand_mhz
        candidates = [
            sid for sid in _local_candidates(engine.instance, request)
            if self._free_for(sid, planned_mhz) >= demand
            and self._deadline_ok(request, sid, self._slot)
        ]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda sid: (self._free_for(sid, planned_mhz), sid))
