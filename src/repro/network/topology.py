"""MEC network topology: base stations and the backhaul graph.

The paper generates topologies with GT-ITM [13].  GT-ITM's flat random
graphs use the Waxman model: nodes are placed uniformly in the unit
square and an edge between nodes ``u`` and ``v`` appears with
probability ``alpha * exp(-d(u, v) / (beta * d_max))``.  We reproduce
that model (seeded, connectivity-repaired) on top of networkx.

Each base station carries a computing capacity ``C(bs_i)`` drawn
uniformly from the configured range, and each backhaul link carries a
transmission delay for one ``rho_unit`` of data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..config import NetworkConfig
from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng


@dataclass(frozen=True)
class BaseStation:
    """A 5G base station with co-located edge computing resources.

    Attributes:
        station_id: index of the station in the network (0-based).
        capacity_mhz: computing capacity ``C(bs_i)`` in MHz.
        position: (x, y) coordinates in the unit square; used by the
            Waxman model and by "closest base station" queries.
    """

    station_id: int
    capacity_mhz: float
    position: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.station_id < 0:
            raise ConfigurationError(
                f"station_id must be >= 0, got {self.station_id}")
        if self.capacity_mhz <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity_mhz}")

    def num_slots(self, slot_size_mhz: float) -> int:
        """Number of resource slots ``L = floor(C(bs_i) / C_l)``."""
        if slot_size_mhz <= 0:
            raise ConfigurationError(
                f"slot size must be positive, got {slot_size_mhz}")
        return int(math.floor(self.capacity_mhz / slot_size_mhz))


@dataclass
class MECNetwork:
    """The MEC network ``G = (BS, E)``.

    The backhaul is an undirected weighted graph over station ids; the
    weight of edge ``(u, v)`` is the delay (ms) of transmitting one
    ``rho_unit`` of data across that link.

    Attributes:
        stations: the base stations, indexed by ``station_id``.
        graph: networkx graph with a ``delay_ms`` attribute per edge.
        slot_size_mhz: the resource slot capacity ``C_l``.
    """

    stations: List[BaseStation]
    graph: nx.Graph
    slot_size_mhz: float
    _by_id: Dict[int, BaseStation] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.stations:
            raise ConfigurationError("a network needs at least one station")
        if self.slot_size_mhz <= 0:
            raise ConfigurationError(
                f"slot size must be positive, got {self.slot_size_mhz}")
        self._by_id = {bs.station_id: bs for bs in self.stations}
        if len(self._by_id) != len(self.stations):
            raise ConfigurationError("duplicate station ids in network")
        for bs in self.stations:
            if bs.station_id not in self.graph:
                raise ConfigurationError(
                    f"station {bs.station_id} missing from backhaul graph")
        if not nx.is_connected(self.graph):
            raise ConfigurationError("backhaul graph must be connected")

    def __len__(self) -> int:
        return len(self.stations)

    def __iter__(self) -> Iterator[BaseStation]:
        return iter(self.stations)

    def station(self, station_id: int) -> BaseStation:
        """Return the station with the given id."""
        try:
            return self._by_id[station_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown station id {station_id}") from None

    @property
    def station_ids(self) -> List[int]:
        """All station ids, sorted ascending."""
        return sorted(self._by_id)

    def link_delay_ms(self, u: int, v: int) -> float:
        """Per-``rho_unit`` transmission delay of backhaul link (u, v)."""
        try:
            return float(self.graph[u][v]["delay_ms"])
        except KeyError:
            raise ConfigurationError(f"no backhaul link ({u}, {v})") from None

    def num_slots(self, station_id: int) -> int:
        """Resource slots of one station under this network's ``C_l``."""
        return self.station(station_id).num_slots(self.slot_size_mhz)

    def total_capacity_mhz(self) -> float:
        """Aggregate computing capacity of the whole network."""
        return float(sum(bs.capacity_mhz for bs in self.stations))

    def neighbors(self, station_id: int) -> List[int]:
        """Backhaul neighbours of a station, sorted ascending."""
        self.station(station_id)
        return sorted(self.graph.neighbors(station_id))

    def closest_station(self, position: Tuple[float, float],
                        exclude: Optional[set] = None) -> BaseStation:
        """The station geometrically closest to `position`.

        Used to attach a mobile user to its serving base station, and by
        the Heu migration step ("closest base station of bs_i").

        Args:
            position: (x, y) query point in the unit square.
            exclude: station ids to skip (e.g. the overloaded station
                itself during migration).
        """
        exclude = exclude or set()
        candidates = [bs for bs in self.stations
                      if bs.station_id not in exclude]
        if not candidates:
            raise ConfigurationError("no candidate stations left")
        return min(
            candidates,
            key=lambda bs: ((bs.position[0] - position[0]) ** 2
                            + (bs.position[1] - position[1]) ** 2,
                            bs.station_id))


def _waxman_edges(positions: np.ndarray, alpha: float, beta: float,
                  rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Sample Waxman-model edges over the given node positions."""
    n = positions.shape[0]
    if n < 2:
        return []
    diffs = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diffs ** 2).sum(axis=2))
    d_max = float(dist.max())
    if d_max <= 0:
        d_max = 1.0
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            prob = alpha * math.exp(-dist[u, v] / (beta * d_max))
            if rng.random() < prob:
                edges.append((u, v))
    return edges


def _repair_connectivity(graph: nx.Graph, positions: np.ndarray) -> None:
    """Connect graph components with the geometrically shortest bridges.

    GT-ITM guarantees connected topologies; a raw Waxman sample may not
    be connected, so we add the shortest inter-component edge until the
    graph is connected.  This keeps the added edges plausible (they are
    exactly the edges the Waxman model was most likely to create).
    """
    while not nx.is_connected(graph):
        components = [sorted(c) for c in nx.connected_components(graph)]
        base = components[0]
        best = None
        for other in components[1:]:
            for u in base:
                for v in other:
                    d = float(np.linalg.norm(positions[u] - positions[v]))
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        graph.add_edge(best[1], best[2])


def generate_topology(config: NetworkConfig,
                      rng: RngLike = None) -> MECNetwork:
    """Generate a seeded GT-ITM-style MEC topology.

    Nodes are placed uniformly at random in the unit square; edges
    follow the Waxman model with the configured ``alpha``/``beta``;
    connectivity is repaired with shortest bridges; capacities and link
    delays are drawn uniformly from the configured ranges.

    Args:
        config: network parameters (validated before use).
        rng: seed or generator for all random draws.

    Returns:
        A connected :class:`MECNetwork`.
    """
    config.validate()
    rng = ensure_rng(rng)
    n = config.num_base_stations

    positions = rng.random((n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(
        _waxman_edges(positions, config.waxman_alpha, config.waxman_beta, rng))
    if n > 1:
        _repair_connectivity(graph, positions)

    lo_d, hi_d = config.link_delay_range_ms
    for u, v in graph.edges:
        graph[u][v]["delay_ms"] = float(rng.uniform(lo_d, hi_d))

    lo_c, hi_c = config.capacity_range_mhz
    stations = [
        BaseStation(
            station_id=i,
            capacity_mhz=float(rng.uniform(lo_c, hi_c)),
            position=(float(positions[i, 0]), float(positions[i, 1])),
        )
        for i in range(n)
    ]
    return MECNetwork(stations=stations, graph=graph,
                      slot_size_mhz=config.slot_size_mhz)
