"""Resource-slot partitioning and capacity accounting.

The paper's LP relaxation hinges on slicing each base station's
computing capacity ``C(bs_i)`` into ``L = floor(C(bs_i) / C_l)``
*resource slots* of ``C_l`` MHz each (Section IV-A, Fig. 2).  A request
assigned to *starting slot* ``l`` begins consuming resources at offset
``l * C_l`` and may spill across several subsequent slots, because its
realized data rate - and hence its demand - is unknown at assignment
time.

:class:`ResourceSlots` captures the static slot geometry of one
station; :class:`CapacityLedger` tracks dynamic occupancy across the
whole network while algorithms admit, migrate, and release requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..exceptions import CapacityError, ConfigurationError
from .topology import MECNetwork


@dataclass(frozen=True)
class ResourceSlots:
    """Static slot geometry of one base station.

    Attributes:
        capacity_mhz: the station's total capacity ``C(bs_i)``.
        slot_size_mhz: the slot capacity ``C_l``.
    """

    capacity_mhz: float
    slot_size_mhz: float

    def __post_init__(self) -> None:
        if self.capacity_mhz <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity_mhz}")
        if self.slot_size_mhz <= 0:
            raise ConfigurationError(
                f"slot size must be positive, got {self.slot_size_mhz}")

    @property
    def num_slots(self) -> int:
        """``L = floor(C(bs_i) / C_l)``."""
        return int(self.capacity_mhz // self.slot_size_mhz)

    def slot_offset_mhz(self, slot: int) -> float:
        """Resource offset ``l * C_l`` at which slot `slot` begins.

        Slots are indexed from 0; the paper's ``l``-th slot with
        threshold ``l * C_l`` corresponds to index ``l`` here, i.e. a
        request starting at slot index ``l`` finds ``l * C_l`` MHz
        potentially occupied before it.
        """
        self._check_slot(slot)
        return slot * self.slot_size_mhz

    def remaining_after_mhz(self, slot: int) -> float:
        """Capacity remaining from slot `slot` on: ``C(bs_i) - l*C_l``.

        This is the budget that determines the expected reward
        ``ER_{jil}`` of Eq. (8): only realized rates whose demand fits
        into this remainder earn their reward.
        """
        self._check_slot(slot)
        return self.capacity_mhz - self.slot_offset_mhz(slot)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(
                f"slot index {slot} out of range [0, {self.num_slots})")


class CapacityLedger:
    """Dynamic occupancy tracker for every station in a network.

    The ledger records, per station, the demands (MHz) of currently
    admitted requests.  It enforces the hard capacity constraint and
    exposes the prefix-occupancy test of Algorithm 1 line 6 ("the
    requests assigned so far occupy at most ``l * C_l``").

    Args:
        network: the MEC network whose capacities to track.
    """

    def __init__(self, network: MECNetwork) -> None:
        self._network = network
        self._occupied: Dict[int, float] = {
            sid: 0.0 for sid in network.station_ids}
        self._holdings: Dict[Tuple[int, int], float] = {}

    @property
    def network(self) -> MECNetwork:
        """The tracked network."""
        return self._network

    def occupied_mhz(self, station_id: int) -> float:
        """Total MHz currently occupied at one station."""
        try:
            return self._occupied[station_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown station id {station_id}") from None

    def free_mhz(self, station_id: int) -> float:
        """Remaining free capacity at one station."""
        cap = self._network.station(station_id).capacity_mhz
        return cap - self.occupied_mhz(station_id)

    def holding_mhz(self, request_id: int, station_id: int) -> float:
        """MHz held by one request at one station (0 if none)."""
        return self._holdings.get((request_id, station_id), 0.0)

    def stations_of(self, request_id: int) -> List[int]:
        """Stations where a request currently holds resources."""
        return sorted(sid for (rid, sid), amount in self._holdings.items()
                      if rid == request_id and amount > 0)

    def fits(self, station_id: int, demand_mhz: float) -> bool:
        """Whether `demand_mhz` more MHz fit at the station."""
        if demand_mhz < 0:
            raise ConfigurationError(
                f"demand must be >= 0, got {demand_mhz}")
        return demand_mhz <= self.free_mhz(station_id) + 1e-9

    def prefix_open(self, station_id: int, slot: int) -> bool:
        """Admission test of Algorithm 1 line 6.

        True iff the requests assigned so far to the station occupy at
        most ``l * C_l`` MHz, i.e. starting slot `slot` is still open.
        """
        slots = ResourceSlots(
            capacity_mhz=self._network.station(station_id).capacity_mhz,
            slot_size_mhz=self._network.slot_size_mhz)
        return self.occupied_mhz(station_id) <= (
            slots.slot_offset_mhz(slot) + 1e-9)

    def reserve(self, request_id: int, station_id: int,
                demand_mhz: float) -> None:
        """Reserve `demand_mhz` MHz for a request at a station.

        Raises:
            CapacityError: if the reservation would exceed capacity.
        """
        if demand_mhz < 0:
            raise ConfigurationError(
                f"demand must be >= 0, got {demand_mhz}")
        if not self.fits(station_id, demand_mhz):
            raise CapacityError(
                f"request {request_id} needs {demand_mhz:.1f} MHz at "
                f"station {station_id} but only "
                f"{self.free_mhz(station_id):.1f} MHz are free")
        self._occupied[station_id] += demand_mhz
        key = (request_id, station_id)
        self._holdings[key] = self._holdings.get(key, 0.0) + demand_mhz

    def release(self, request_id: int, station_id: int,
                demand_mhz: float) -> None:
        """Release previously reserved MHz.

        Raises:
            CapacityError: if the request does not hold that much.
        """
        key = (request_id, station_id)
        held = self._holdings.get(key, 0.0)
        if demand_mhz < 0 or demand_mhz > held + 1e-9:
            raise CapacityError(
                f"request {request_id} holds {held:.1f} MHz at station "
                f"{station_id}, cannot release {demand_mhz:.1f}")
        self._holdings[key] = held - demand_mhz
        self._occupied[station_id] -= demand_mhz
        if self._holdings[key] <= 1e-12:
            del self._holdings[key]

    def release_all(self, request_id: int) -> None:
        """Release every holding of one request (idempotent)."""
        for station_id in self.stations_of(request_id):
            self.release(request_id, station_id,
                         self.holding_mhz(request_id, station_id))

    def migrate(self, request_id: int, src: int, dst: int,
                demand_mhz: float) -> None:
        """Atomically move a holding between stations.

        Used by Heu's adjustment step.  Raises :class:`CapacityError`
        (leaving state unchanged) if the destination cannot host it.
        """
        if not self.fits(dst, demand_mhz):
            raise CapacityError(
                f"cannot migrate {demand_mhz:.1f} MHz of request "
                f"{request_id} to station {dst}: only "
                f"{self.free_mhz(dst):.1f} MHz free")
        self.release(request_id, src, demand_mhz)
        self.reserve(request_id, dst, demand_mhz)

    def utilization(self) -> Dict[int, float]:
        """Per-station occupied fraction (0..1)."""
        return {
            sid: self.occupied_mhz(sid)
            / self._network.station(sid).capacity_mhz
            for sid in self._network.station_ids
        }

    def snapshot(self) -> Dict[int, float]:
        """Copy of the per-station occupancy map (MHz)."""
        return dict(self._occupied)
