"""Additional topology families beyond the flat Waxman default.

GT-ITM [13] is best known for **transit-stub** topologies: a small
transit core interconnecting stub domains that hang off transit nodes.
:func:`generate_transit_stub` reproduces that structure at MEC scale
(the transit core models metro aggregation sites; stubs model street-
level base-station clusters).  Regular families (ring, star, grid) are
included for controlled experiments where topology effects must be
isolated from randomness.

All generators return the same :class:`~repro.network.topology.MECNetwork`
as the default generator, so every algorithm runs unchanged on any of
them.
"""

from __future__ import annotations

import math
from typing import List

import networkx as nx
import numpy as np

from ..config import NetworkConfig
from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng
from .topology import BaseStation, MECNetwork


def _finalize(graph: nx.Graph, positions: np.ndarray,
              config: NetworkConfig,
              rng: np.random.Generator) -> MECNetwork:
    """Attach delays/capacities and wrap into an MECNetwork."""
    lo_d, hi_d = config.link_delay_range_ms
    for u, v in graph.edges:
        graph[u][v]["delay_ms"] = float(rng.uniform(lo_d, hi_d))
    lo_c, hi_c = config.capacity_range_mhz
    stations = [
        BaseStation(station_id=i,
                    capacity_mhz=float(rng.uniform(lo_c, hi_c)),
                    position=(float(positions[i, 0]),
                              float(positions[i, 1])))
        for i in range(graph.number_of_nodes())
    ]
    return MECNetwork(stations=stations, graph=graph,
                      slot_size_mhz=config.slot_size_mhz)


def generate_transit_stub(config: NetworkConfig,
                          num_transit: int = 4,
                          rng: RngLike = None) -> MECNetwork:
    """A GT-ITM-style two-level transit-stub topology.

    ``num_transit`` core nodes form a ring (metro aggregation); the
    remaining ``num_base_stations - num_transit`` stations split into
    one stub cluster per transit node, each stub wired as a star onto
    its transit node with one random intra-stub chord for redundancy.

    Args:
        config: network parameters (count, capacities, delays).
        num_transit: size of the transit core (>= 1, less than the
            total station count).
        rng: seed or generator.

    Returns:
        A connected :class:`MECNetwork`.
    """
    config.validate()
    n = config.num_base_stations
    if not 1 <= num_transit < max(n, 2):
        raise ConfigurationError(
            f"num_transit must be in [1, {n}), got {num_transit}")
    if n == 1:
        num_transit = 1
    rng = ensure_rng(rng)

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    positions = np.zeros((n, 2))

    # Transit core: ring around the unit-square centre.
    for t in range(num_transit):
        angle = 2.0 * math.pi * t / num_transit
        positions[t] = (0.5 + 0.2 * math.cos(angle),
                        0.5 + 0.2 * math.sin(angle))
        if num_transit > 1:
            graph.add_edge(t, (t + 1) % num_transit)

    # Stub clusters: round-robin the remaining nodes over transit
    # nodes, star-wired with a chord.
    stubs: List[List[int]] = [[] for _ in range(num_transit)]
    for i in range(num_transit, n):
        stubs[(i - num_transit) % num_transit].append(i)
    for t, members in enumerate(stubs):
        centre = positions[t]
        for k, node in enumerate(members):
            angle = 2.0 * math.pi * k / max(len(members), 1)
            radius = 0.12 + 0.08 * rng.random()
            positions[node] = (
                float(np.clip(centre[0] + radius * math.cos(angle),
                              0.0, 1.0)),
                float(np.clip(centre[1] + radius * math.sin(angle),
                              0.0, 1.0)))
            graph.add_edge(t, node)
        if len(members) >= 2:
            a, b = rng.choice(members, size=2, replace=False)
            graph.add_edge(int(a), int(b))

    return _finalize(graph, positions, config, rng)


def generate_ring(config: NetworkConfig,
                  rng: RngLike = None) -> MECNetwork:
    """Stations on a ring (each wired to its two neighbours)."""
    config.validate()
    n = config.num_base_stations
    rng = ensure_rng(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    positions = np.zeros((n, 2))
    for i in range(n):
        angle = 2.0 * math.pi * i / max(n, 1)
        positions[i] = (0.5 + 0.4 * math.cos(angle),
                        0.5 + 0.4 * math.sin(angle))
        if n > 1:
            graph.add_edge(i, (i + 1) % n)
    return _finalize(graph, positions, config, rng)


def generate_star(config: NetworkConfig,
                  rng: RngLike = None) -> MECNetwork:
    """A hub station (id 0) wired to every other station."""
    config.validate()
    n = config.num_base_stations
    rng = ensure_rng(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    positions = np.zeros((n, 2))
    positions[0] = (0.5, 0.5)
    for i in range(1, n):
        angle = 2.0 * math.pi * (i - 1) / max(n - 1, 1)
        positions[i] = (0.5 + 0.4 * math.cos(angle),
                        0.5 + 0.4 * math.sin(angle))
        graph.add_edge(0, i)
    return _finalize(graph, positions, config, rng)


def generate_grid(config: NetworkConfig,
                  rng: RngLike = None) -> MECNetwork:
    """Stations on the tightest square-ish grid holding them all.

    The grid has ``ceil(sqrt(n))`` columns; the last row may be
    partial.  Neighbours are 4-connected.
    """
    config.validate()
    n = config.num_base_stations
    rng = ensure_rng(rng)
    cols = int(math.ceil(math.sqrt(n)))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    positions = np.zeros((n, 2))
    for i in range(n):
        row, col = divmod(i, cols)
        positions[i] = ((col + 0.5) / cols,
                        (row + 0.5) / cols)
        if col > 0:
            graph.add_edge(i, i - 1)
        if row > 0:
            graph.add_edge(i, i - cols)
    return _finalize(graph, positions, config, rng)
