"""MEC network substrate: base stations, backhaul topology, capacity.

The paper models the MEC network as ``G = (BS, E)`` where ``BS`` is a
set of 5G base stations interconnected by backhaul paths ``E``.  This
subpackage provides:

* :class:`~repro.network.topology.BaseStation` and
  :class:`~repro.network.topology.MECNetwork` - the graph model,
* :func:`~repro.network.topology.generate_topology` - a seeded
  GT-ITM-style (Waxman) random topology generator,
* :class:`~repro.network.paths.PathTable` - latency-weighted shortest
  paths between stations (and from user attachment points),
* :class:`~repro.network.capacity.ResourceSlots` and
  :class:`~repro.network.capacity.CapacityLedger` - the resource-slot
  partitioning that underpins the paper's LP relaxation.
"""

from .topology import BaseStation, MECNetwork, generate_topology
from .paths import PathTable
from .capacity import CapacityLedger, ResourceSlots

__all__ = [
    "BaseStation",
    "MECNetwork",
    "generate_topology",
    "PathTable",
    "ResourceSlots",
    "CapacityLedger",
]
