"""Latency-weighted shortest paths over the MEC backhaul.

The latency model of Eq. (2) charges, per assignment of request ``r_j``
to base station ``bs_i``, twice the transmission delay of every link on
the shortest path ``p_{ji}`` between the user's serving station and
``bs_i`` (uplink + downlink), plus the per-task processing delays.

:class:`PathTable` precomputes all-pairs shortest paths by transmission
delay (Dijkstra via networkx) and caches both the path and its one-way
delay, so algorithms can query round-trip delays in O(1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..exceptions import ConfigurationError
from .topology import MECNetwork


class PathTable:
    """All-pairs shortest paths of an MEC backhaul by transmission delay.

    Args:
        network: the MEC network whose backhaul to index.

    The table is immutable after construction; rebuilding it after a
    topology change is the caller's responsibility.
    """

    def __init__(self, network: MECNetwork) -> None:
        self._network = network
        self._delay: Dict[Tuple[int, int], float] = {}
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        lengths = dict(nx.all_pairs_dijkstra_path_length(
            network.graph, weight="delay_ms"))
        paths = dict(nx.all_pairs_dijkstra_path(
            network.graph, weight="delay_ms"))
        for src, targets in lengths.items():
            for dst, delay in targets.items():
                self._delay[(src, dst)] = float(delay)
        for src, targets in paths.items():
            for dst, path in targets.items():
                self._paths[(src, dst)] = list(path)

    @property
    def network(self) -> MECNetwork:
        """The network this table was built from."""
        return self._network

    def one_way_delay_ms(self, src: int, dst: int) -> float:
        """One-way transmission delay of one ``rho_unit`` from src to dst."""
        try:
            return self._delay[(src, dst)]
        except KeyError:
            raise ConfigurationError(
                f"no path between stations {src} and {dst}") from None

    def round_trip_delay_ms(self, src: int, dst: int) -> float:
        """Round-trip delay ``sum_{e in p_ji} 2 * d^trans_je`` of Eq. (2)."""
        return 2.0 * self.one_way_delay_ms(src, dst)

    def path(self, src: int, dst: int) -> List[int]:
        """Station ids along the shortest path (inclusive of endpoints)."""
        try:
            return list(self._paths[(src, dst)])
        except KeyError:
            raise ConfigurationError(
                f"no path between stations {src} and {dst}") from None

    def hop_count(self, src: int, dst: int) -> int:
        """Number of backhaul links on the shortest path."""
        return max(0, len(self.path(src, dst)) - 1)

    def nearest_by_delay(self, src: int, exclude: Tuple[int, ...] = ()) -> int:
        """Station with the smallest one-way delay from `src`.

        Used by the Heu migration step: tasks of an overflowing request
        migrate to the *closest* base station of the overloaded one.

        Args:
            src: origin station id.
            exclude: station ids to skip (always implicitly includes
                `src` itself).
        """
        skip = set(exclude) | {src}
        candidates = [sid for sid in self._network.station_ids
                      if sid not in skip]
        if not candidates:
            raise ConfigurationError(
                f"no candidate stations reachable from {src}")
        return min(candidates,
                   key=lambda sid: (self.one_way_delay_ms(src, sid), sid))

    def stations_by_delay(self, src: int) -> List[int]:
        """All other stations sorted by increasing one-way delay."""
        others = [sid for sid in self._network.station_ids if sid != src]
        return sorted(others,
                      key=lambda sid: (self.one_way_delay_ms(src, sid), sid))
