"""Whole-program rules: DET010 transitive nondeterminism, CONC001
shared mutable state, CONC002 blocking-in-async, PKL010 pickling
reachability, UNIT010 interprocedural unit flow.

These are the call-graph upgrades of the file-local catalogue: where
DET001 flags a ``time.time()`` *call*, DET010 follows its *value*
through returns, arguments, and ``self`` attributes until it reaches a
serialization sink; where PKL001 spots a lambda in a payload
expression, PKL010 walks the type closure of everything a payload can
carry.  All five share one :class:`~repro.analysis.dataflow.ProjectContext`
per scan.  See docs/ANALYSIS.md "Whole-program rules" for each rule's
sources/sinks/sanitizers tables and the over-approximation policy.
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, Iterator, List, Optional, Set,
                    Tuple)

from .callgraph import split_node_key
from .dataflow import ProjectContext, TaintAnalysis, async_functions
from .findings import Finding
from .framework import DataflowRule, register
from .symbols import CallSite, FunctionSummary, unit_family

#: Wall-clock / OS-entropy callables whose values DET010 tracks.
DET010_SOURCES: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex",
    "secrets.token_urlsafe",
})

#: The telemetry *exposition layer*: functions here are opaque to
#: DET010 taint (scrape timestamps, advisory latency histograms, and
#: provenance clocks are wall-clock by meaning and cannot reach the
#: decision path - docs/ANALYSIS.md "DET001 and the exposition layer").
DET010_SANITIZERS: Tuple[str, ...] = (
    "telemetry/ledger.py",
    "telemetry/tracer.py",
    "telemetry/progress.py",
    "telemetry/metrics.py",
    "service/http.py",
    "service/console.py",
)

#: Serialization sinks: constructors of journaled/checkpointed records.
_SINK_CTORS = ("Event", "ServiceCheckpoint")


def _sink_name(site: CallSite) -> Optional[str]:
    """The sink a call site writes into, or None."""
    if site.chain is None:
        return None
    parts = site.chain.split(".")
    leaf = parts[-1]
    if leaf in _SINK_CTORS:
        return leaf
    if leaf == "record" and len(parts) >= 2 \
            and "journal" in parts[-2].lower():
        return f"{parts[-2]}.record"
    return None


@register
class TransitiveNondeterminismRule(DataflowRule):
    """DET010: wall-clock/entropy values reaching serialization."""

    rule_id = "DET010"
    title = "wall-clock/OS-entropy value reaches a serialization sink"
    rationale = (
        "DET001 catches the call; this catches the *value*: a "
        "perf_counter reading laundered through two helpers into an "
        "Event payload or a ServiceCheckpoint field still breaks "
        "byte-identical replay.  Sinks are Event(...), "
        "ServiceCheckpoint(...), and journal .record(...); the "
        "telemetry exposition layer is a declared sanitizer.")
    hint = ("keep wall-clock values inside the telemetry exposition "
            "layer (metrics/tracer/ledger); derive journaled fields "
            "from slots, seeds, and domain state only")

    def check_context(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        analysis = TaintAnalysis(context, DET010_SOURCES,
                                 DET010_SANITIZERS)
        for key, summary, function in context.functions():
            if analysis.sanitized_path(summary.relpath):
                continue
            for site in function.calls:
                sink = _sink_name(site)
                if sink is None:
                    continue
                witness = analysis.site_arg_witness(
                    key, function, site.index)
                if witness is not None:
                    yield self.context_finding(
                        context, summary.relpath, site.lineno,
                        f"nondeterministic value flows into "
                        f"{sink}(...): {witness}",
                        col=site.col)


#: The sanctioned ambient-state idiom: ``use_tracer``/``use_journal``/
#: ``use_metrics`` swap a module-level ``_current`` in a context
#: manager.  Worker processes each get their own interpreter and the
#: service tick swaps it in a ``with`` block, so these writes are the
#: one blessed exception.
CONC001_BLESSED: Tuple[Tuple[str, str], ...] = (
    ("telemetry/tracer.py", "_current"),
    ("telemetry/audit.py", "_current"),
    ("telemetry/metrics.py", "_current"),
)

#: Concurrent entry points declared by path suffix + qualname (the
#: service tick and its coroutine driver), on top of the auto-detected
#: ``pool.submit``/``pool.map`` targets.
CONC001_DECLARED: Tuple[Tuple[str, str], ...] = (
    ("service/loop.py", "AdmissionService.tick"),
    ("service/loop.py", "AdmissionService.serve"),
)


@register
class SharedMutableStateRule(DataflowRule):
    """CONC001: globals written from concurrent entry points."""

    rule_id = "CONC001"
    title = "module-level global written from worker-reachable code"
    rationale = (
        "ROADMAP item 3 shards the engine across workers; a "
        "module-level dict or list written from code reachable from a "
        "ProcessPool target or the service tick is cross-run shared "
        "state - exactly what the determinism contract forbids.")
    hint = ("pass state explicitly (through the spec/config) or use "
            "the blessed use_tracer/use_journal/use_metrics ambient "
            "idiom; never write module globals from worker paths")

    def _entry_points(self, context: ProjectContext) -> List[str]:
        from .callgraph import pool_entry_points

        entries = pool_entry_points(context.summaries, context.table)
        for node in context.graph.nodes:
            relpath, qualname = split_node_key(node)
            for suffix, declared in CONC001_DECLARED:
                if relpath.endswith(suffix) and qualname == declared \
                        and node not in entries:
                    entries.append(node)
        return entries

    def check_context(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        entries = self._entry_points(context)
        if not entries:
            return
        parents = context.graph.reachable(entries)
        seen: Set[Tuple[str, int, str]] = set()
        for reached in sorted(parents):
            relpath, qualname = split_node_key(reached)
            summary = context.summaries.get(relpath)
            if summary is None:
                continue
            function = summary.functions.get(qualname)
            if function is None:
                continue
            for row in function.global_writes:
                kind, name, lineno = str(row[0]), str(row[1]), \
                    int(row[2])
                if summary.globals.get(name) == "contextvar":
                    continue
                if any(relpath.endswith(path) and name == blessed
                       for path, blessed in CONC001_BLESSED):
                    continue
                anchor = (relpath, lineno, name)
                if anchor in seen:
                    continue
                seen.add(anchor)
                chain = context.graph.chain_to(parents, reached)
                route = " -> ".join(
                    split_node_key(step)[1] for step in chain)
                verb = "rebound" if kind == "rebind" \
                    else "mutated in place"
                yield self.context_finding(
                    context, relpath, lineno,
                    f"module-level global {name!r} is {verb} in "
                    f"{qualname}, reachable from concurrent entry "
                    f"point via {route}")


#: Calls that block the event loop when awaited nowhere.
CONC002_BLOCKING: FrozenSet[str] = frozenset({
    "time.sleep", "os.system",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
    "socket.create_connection", "select.select",
    "input",
})


@register
class BlockingInAsyncRule(DataflowRule):
    """CONC002: blocking call reachable from ``async def``."""

    rule_id = "CONC002"
    title = "blocking call reachable from async code"
    rationale = (
        "serve() multiplexes the admission loop with the scrape "
        "endpoint on one event loop; a time.sleep or synchronous "
        "urlopen anywhere in an async call chain stalls every "
        "coroutine - health probes go dark while a slot runs.")
    hint = ("await asyncio.sleep(...) instead, or hop the call off "
            "the loop via loop.run_in_executor / asyncio.to_thread "
            "(function references passed there are exempt)")

    def _is_blocking(self, context: ProjectContext, key: str,
                     site: CallSite) -> Optional[str]:
        resolution = context.graph.resolution(key, site.index)
        if resolution.kind == "external" \
                and resolution.qualified in CONC002_BLOCKING:
            return resolution.qualified
        if site.chain in CONC002_BLOCKING:
            return site.chain
        return None

    def check_context(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        for async_key in async_functions(context):
            async_relpath, async_qualname = split_node_key(async_key)
            async_summary = context.summaries[async_relpath]
            async_fn = async_summary.functions[async_qualname]
            parents = context.graph.reachable([async_key])
            reported: Set[Tuple[str, int]] = set()
            for reached in sorted(parents):
                relpath, qualname = split_node_key(reached)
                function = context.summaries[relpath].functions.get(
                    qualname)
                if function is None:
                    continue
                for site in function.calls:
                    blocking = self._is_blocking(context, reached,
                                                 site)
                    if blocking is None:
                        continue
                    if reached == async_key:
                        anchor = (relpath, site.lineno)
                        if anchor in reported:
                            continue
                        reported.add(anchor)
                        yield self.context_finding(
                            context, relpath, site.lineno,
                            f"async {async_qualname} calls blocking "
                            f"{blocking}() directly", col=site.col)
                    else:
                        anchor = (relpath, site.lineno)
                        if anchor in reported:
                            continue
                        reported.add(anchor)
                        chain = context.graph.chain_to(parents,
                                                       reached)
                        route = " -> ".join(
                            split_node_key(step)[1]
                            for step in chain)
                        yield self.context_finding(
                            context, async_relpath, async_fn.lineno,
                            f"async {async_qualname} reaches blocking "
                            f"{blocking}() at {relpath}:{site.lineno} "
                            f"via {route}")


#: Constructors whose instances cannot cross a pickle boundary.
PKL010_UNPICKLABLE: FrozenSet[str] = frozenset({
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Condition", "threading.Semaphore",
    "threading.BoundedSemaphore", "_thread.allocate_lock",
    "contextvars.ContextVar", "socket.socket", "subprocess.Popen",
    "mmap.mmap", "sqlite3.connect",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "open", "io.open", "builtins.open",
    "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile",
})

#: Payload roots whose transitive type closure must stay picklable.
_PKL_ROOTS = ("RunSpec", "ServiceCheckpoint")


@register
class PicklingReachabilityRule(DataflowRule):
    """PKL010: unpicklable types reachable from payload closures."""

    rule_id = "PKL010"
    title = "unpicklable type reachable from a RunSpec/ServiceCheckpoint"
    rationale = (
        "PKL001 spots a lambda at the payload call; this walks what "
        "the payload *carries*: a class two attribute-hops inside a "
        "checkpointed object that holds a threading.Lock or an open "
        "file fails to pickle only when --workers or checkpointing "
        "is actually exercised, far from the bug.")
    hint = ("keep payload object graphs to plain data (dataclasses, "
            "dicts, tuples); acquire locks/files/pools in the worker, "
            "not in state that crosses the boundary")

    def _descriptor_classes(self, context: ProjectContext,
                            relpath: str,
                            function: Optional[FunctionSummary],
                            descriptor: Optional[List[str]]
                            ) -> List[Tuple[str, str]]:
        if descriptor is None:
            return []
        summary = context.summaries[relpath]
        kind, detail = descriptor[0], descriptor[1]
        if kind == "ctor":
            ref = context.table.resolve_class_chain(summary, function,
                                                    detail)
            return [ref] if ref is not None else []
        if kind == "selfattr" and function is not None \
                and function.class_name is not None:
            refs = context.table.class_attr_types(
                relpath, function.class_name)
            return list(refs.get(detail, []))
        return []

    def _closure_roots(self, context: ProjectContext
                       ) -> Dict[Tuple[str, str], str]:
        roots: Dict[Tuple[str, str], str] = {}
        for key, summary, function in context.functions():
            for site in function.calls:
                if site.chain is None:
                    continue
                leaf = site.chain.split(".")[-1]
                if leaf not in _PKL_ROOTS:
                    continue
                provenance = (f"{leaf}(...) at "
                              f"{summary.relpath}:{site.lineno}")
                descriptors = list(site.arg_types) \
                    + [site.kw_types[name]
                       for name in sorted(site.kw_types)]
                for descriptor in descriptors:
                    for ref in self._descriptor_classes(
                            context, summary.relpath, function,
                            descriptor):
                        roots.setdefault(ref, provenance)
        for relpath in sorted(context.summaries):
            summary = context.summaries[relpath]
            for name in _PKL_ROOTS:
                cls = summary.classes.get(name)
                if cls is None:
                    continue
                for attr in sorted(cls.fields):
                    for chain in cls.fields[attr]:
                        ref = context.table.resolve_class_chain(
                            summary, None, chain)
                        if ref is not None:
                            roots.setdefault(
                                ref, f"{name}.{attr} field")
        return roots

    def check_context(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        roots = self._closure_roots(context)
        # Transitive closure over typed attributes.
        worklist = sorted(roots)
        closure: Dict[Tuple[str, str], str] = dict(roots)
        while worklist:
            relpath, class_name = worklist.pop(0)
            provenance = closure[(relpath, class_name)]
            refs = context.table.class_attr_types(relpath, class_name)
            for attr in sorted(refs):
                for ref in refs[attr]:
                    if ref not in closure:
                        closure[ref] = provenance
                        worklist.append(ref)
        seen: Set[Tuple[str, int, str]] = set()
        for relpath, class_name in sorted(closure):
            provenance = closure[(relpath, class_name)]
            summary = context.summaries.get(relpath)
            if summary is None or class_name not in summary.classes:
                continue
            prefix = f"{class_name}."
            for qualname in sorted(summary.functions):
                if not qualname.startswith(prefix):
                    continue
                function = summary.functions[qualname]
                for lambda_row in function.attr_lambdas:
                    attr, lineno = str(lambda_row[0]), \
                        int(lambda_row[1])
                    anchor = (relpath, lineno, attr)
                    if anchor in seen:
                        continue
                    seen.add(anchor)
                    yield self.context_finding(
                        context, relpath, lineno,
                        f"{class_name}.{attr} holds a lambda; "
                        f"{class_name} is reachable from "
                        f"{provenance} and must pickle")
                for type_row in function.attr_types:
                    attr, chain, lineno = str(type_row[0]), \
                        str(type_row[1]), int(type_row[2])
                    qualified = self._external_name(context, relpath,
                                                    function, chain)
                    if qualified is None \
                            or qualified not in PKL010_UNPICKLABLE:
                        continue
                    anchor = (relpath, lineno, attr)
                    if anchor in seen:
                        continue
                    seen.add(anchor)
                    yield self.context_finding(
                        context, relpath, lineno,
                        f"{class_name}.{attr} holds {qualified}(); "
                        f"{class_name} is reachable from "
                        f"{provenance} and must pickle")

    def _external_name(self, context: ProjectContext, relpath: str,
                       function: FunctionSummary,
                       chain: str) -> Optional[str]:
        summary = context.summaries[relpath]
        resolution = context.table.resolve_chain(summary, function,
                                                 chain)
        if resolution.kind == "external":
            return resolution.qualified
        if resolution.kind == "unknown":
            return chain
        return None


@register
class InterproceduralUnitRule(DataflowRule):
    """UNIT010: mhz/mbps families tracked through calls and returns."""

    rule_id = "UNIT010"
    title = "mhz/mbps unit family crosses a call boundary unconverted"
    rationale = (
        "UNIT001 sees one expression at a time; a *_mbps return "
        "feeding a *_mhz parameter two modules away is the same 8x "
        "bug with a call boundary hiding it.  Families flow through "
        "parameter names, return names, and returned calls; "
        "repro.units converters are the declared crossing point.")
    hint = ("convert at the boundary via repro.units, or rename the "
            "parameter/return to the family actually carried")

    def _return_units(self, context: ProjectContext
                      ) -> Dict[str, Optional[str]]:
        units: Dict[str, Optional[str]] = {}
        for _ in range(10):
            changed = False
            for key, summary, function in context.functions():
                families: Set[str] = set(function.return_units)
                # The function's own name declares its return family
                # (``capacity_mhz()`` returns mhz even when the body
                # returns a bare constant).
                own = unit_family(function.qualname.rsplit(".", 1)[-1])
                if own is not None:
                    families.add(own)
                for call_index in function.return_calls:
                    family = self._callee_unit(context, units, key,
                                               function, call_index)
                    if family is not None:
                        families.add(family)
                resolved = families.pop() if len(families) == 1 \
                    else None
                if units.get(key) != resolved:
                    units[key] = resolved
                    changed = True
            if not changed:
                break
        return units

    @staticmethod
    def _is_units_module(relpath: str) -> bool:
        return relpath == "units.py" or relpath.endswith("/units.py")

    def _callee_unit(self, context: ProjectContext,
                     units: Dict[str, Optional[str]], key: str,
                     function: FunctionSummary,
                     call_index: int) -> Optional[str]:
        resolution = context.graph.resolution(key, call_index)
        if resolution.kind != "func" \
                or len(resolution.functions) != 1:
            return None
        target = resolution.functions[0]
        relpath, qualname = split_node_key(target)
        if self._is_units_module(relpath):
            return unit_family(qualname.rsplit(".", 1)[-1])
        return units.get(target)

    def _arg_family(self, context: ProjectContext,
                    units: Dict[str, Optional[str]], key: str,
                    function: FunctionSummary,
                    unit_desc: Optional[str]) -> Optional[str]:
        if unit_desc in ("mhz", "mbps"):
            return unit_desc
        if unit_desc is not None and unit_desc.startswith("call:"):
            return self._callee_unit(context, units, key, function,
                                     int(unit_desc.split(":", 1)[1]))
        return None

    def check_context(self, context: ProjectContext
                      ) -> Iterator[Finding]:
        units = self._return_units(context)
        for key, summary, function in context.functions():
            if self._is_units_module(summary.relpath):
                continue
            for site in function.calls:
                resolution = context.graph.resolution(key, site.index)
                if resolution.kind != "func" \
                        or len(resolution.functions) != 1:
                    continue
                target = resolution.functions[0]
                target_relpath, _ = split_node_key(target)
                if self._is_units_module(target_relpath):
                    continue
                callee = context.table.function(target)
                if callee is None:
                    continue
                offset = callee.param_offset() if resolution.bound \
                    else 0
                for position, unit_desc in enumerate(site.arg_units):
                    family = self._arg_family(context, units, key,
                                              function, unit_desc)
                    if family is None:
                        continue
                    index = position + offset
                    if index >= len(callee.params):
                        continue
                    expected = unit_family(callee.params[index])
                    if expected is not None and expected != family:
                        yield self.context_finding(
                            context, summary.relpath, site.lineno,
                            f"passes a *_{family} value into "
                            f"parameter {callee.params[index]!r} "
                            f"(*_{expected}) of {callee.qualname}",
                            col=site.col)
                for name in sorted(site.kw_units):
                    family = self._arg_family(context, units, key,
                                              function,
                                              site.kw_units[name])
                    expected = unit_family(name)
                    if family is not None and expected is not None \
                            and expected != family \
                            and callee.param_index(name) is not None:
                        yield self.context_finding(
                            context, summary.relpath, site.lineno,
                            f"passes a *_{family} value into "
                            f"parameter {name!r} (*_{expected}) of "
                            f"{callee.qualname}", col=site.col)
            for assign_row in function.unit_assigns:
                target_family, call_index, lineno = \
                    str(assign_row[0]), int(assign_row[1]), \
                    int(assign_row[2])
                family = self._callee_unit(context, units, key,
                                           function, call_index)
                if family is not None and family != target_family:
                    site = function.calls[call_index]
                    callee_name = site.chain or "<call>"
                    yield self.context_finding(
                        context, summary.relpath, lineno,
                        f"assigns the *_{family} return of "
                        f"{callee_name}(...) to a *_{target_family} "
                        f"name")
