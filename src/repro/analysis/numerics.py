"""Numeric-discipline rules: NUM001 float equality, UNIT001 unit mixing.

NUM001 targets the reward/capacity/rate arithmetic the paper's
theorems quantify over - exact ``==``/``!=`` on those floats is almost
always a latent tolerance bug.  UNIT001 enforces the unit-suffix
discipline of :mod:`repro.units`: ``*_mhz`` and ``*_mbps`` quantities
may only meet through that module's converters.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .findings import Finding
from .framework import ModuleInfo, Rule, register

#: snake_case tokens marking a domain quantity (reward/capacity/rate
#: expressions in the paper's objective and constraints).
_DOMAIN_TOKENS: Set[str] = {
    "reward", "rewards", "capacity", "capacities", "rate", "rates",
    "mhz", "mbps", "latency", "demand", "demands", "share", "shares",
    "coef", "coeff", "coefs", "tol",
}


def _identifier(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name/Attribute operand."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_domain_name(node: ast.AST) -> bool:
    ident = _identifier(node)
    if ident is None:
        return False
    return any(token in _DOMAIN_TOKENS
               for token in ident.lower().split("_"))


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) \
            and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) \
        and isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    """NUM001: exact float equality on domain quantities."""

    rule_id = "NUM001"
    title = "float ==/!= on a reward/capacity/rate expression"
    rationale = (
        "Theorem 1's ratio and the capacity/reward accounting checks "
        "all compare floats; exact equality silently flips with "
        "harmless reassociation.  Use a tolerance.")
    hint = ("use math.isclose(a, b, rel_tol=..., abs_tol=...) or an "
            "explicit tolerance; an intended exact comparison (e.g. a "
            "structural zero) needs '# repro: noqa NUM001 -- why'")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands,
                                       operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        module, node,
                        "exact equality against a float literal")
                elif _is_domain_name(left) and _is_domain_name(right):
                    yield self.finding(
                        module, node,
                        "exact equality between domain float "
                        "quantities "
                        f"({_identifier(left)!r} vs "
                        f"{_identifier(right)!r})")


def _unit_family(node: ast.AST) -> Optional[str]:
    """``"mhz"``/``"mbps"`` from a trailing unit suffix, else None."""
    ident = _identifier(node)
    if ident is None:
        return None
    tail = ident.lower().rsplit("_", 1)[-1]
    return tail if tail in ("mhz", "mbps") else None


@register
class UnitSuffixRule(Rule):
    """UNIT001: ``*_mhz`` and ``*_mbps`` mixed without a converter."""

    rule_id = "UNIT001"
    title = "mhz/mbps quantities mixed outside repro.units"
    rationale = (
        "The paper mixes MHz compute and MB/s-vs-Mbps stream rates; "
        "repro.units centralizes every conversion so no bare constant "
        "can silently be off by 8x.")
    hint = ("convert explicitly via repro.units (demand_mhz, "
            "rate_from_demand, mbps_to_mbytes_per_s, ...)")
    allowlist = ("repro/units.py",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp):
                families = {_unit_family(node.left),
                            _unit_family(node.right)}
                families.discard(None)
                if len(families) > 1:
                    yield self.finding(
                        module, node,
                        "arithmetic mixes *_mhz and *_mbps operands")
            elif isinstance(node, ast.Compare):
                families = {_unit_family(operand) for operand in
                            [node.left] + list(node.comparators)}
                families.discard(None)
                if len(families) > 1:
                    yield self.finding(
                        module, node,
                        "comparison mixes *_mhz and *_mbps operands")
            elif isinstance(node, ast.Assign):
                if len(node.targets) != 1:
                    continue
                target = _unit_family(node.targets[0])
                value = _unit_family(node.value)
                if target and value and target != value:
                    yield self.finding(
                        module, node,
                        f"assigns a *_{value} value to a *_{target} "
                        f"name")
