"""Finding records produced by the static-analysis rules.

A :class:`Finding` pins one rule violation to a source location and
carries everything the reporting layer needs: the human-readable
message, a fix hint, and the stripped source line (``snippet``) that
anchors the finding in the committed baseline.  Baselines match on
``(rule, path, snippet)`` rather than line numbers so unrelated edits
above a known finding do not invalidate the baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation located in a scanned source tree.

    Attributes:
        rule: rule identifier (``"DET001"`` ... ``"EVT001"``).
        path: path of the offending file, relative to the scanned
            root, in POSIX form.
        line: 1-based line number of the violation.
        col: 0-based column offset.
        message: what is wrong, in one sentence.
        hint: how to fix it (or how to suppress it legitimately).
        snippet: the stripped source line, used as the baseline
            fingerprint anchor.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    snippet: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def sort_key(self) -> Tuple[str, int, int, str, str, str]:
        """Total order over findings.

        ``snippet`` and ``message`` break ties between two findings
        from the same rule at the same location (e.g. two distinct
        taint witnesses into one call), so ``--format json`` output is
        byte-stable run to run.
        """
        return (self.path, self.line, self.col, self.rule,
                self.snippet, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the CI artifact row)."""
        return dataclasses.asdict(self)

    def render(self) -> str:
        """One ``path:line:col RULE message`` report line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Findings in canonical report order (path, line, col, rule,
    snippet, message)."""
    return sorted(findings, key=Finding.sort_key)
