"""Per-module symbol summaries for the whole-program analysis pass.

:func:`summarize_module` distils one parsed module into a
:class:`ModuleSummary`: every import (relative imports resolved against
the module's dotted path), every top-level function and method with its
call sites, the *origins* each value derives from (parameters, call
returns, ``self`` attributes), module-level globals with their
mutability kind, and the functions handed to process pools.

Summaries are deliberately file-local - nothing here looks at another
module - which is what makes them safely cacheable by content hash
(:mod:`repro.analysis.cache`).  All cross-module resolution happens
later, in :mod:`repro.analysis.callgraph` and
:mod:`repro.analysis.dataflow`, which always re-run.

The origin taxonomy (``Origin = (kind, detail)``):

``("param", "2")``
    derives from the function's parameter at index 2;
``("call", "5")``
    derives from the return value of this function's call site #5;
``("attr", "name")``
    derives from ``self.name`` of the enclosing class;
``("lambda", "")``
    is a lambda expression (pickling rules care).

Everything is JSON round-trippable via ``to_dict``/``from_dict`` so the
incremental cache can persist summaries verbatim.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from .framework import ModuleInfo, dotted_name

#: Bump whenever extraction output changes - invalidates every cache.
EXTRACTOR_VERSION = 1

#: ``(kind, detail)`` provenance of a value (see the module docstring).
Origin = Tuple[str, str]

#: Method names that mutate their receiver in place (CONC001's notion
#: of "writing" a module-level container).
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "remove", "setdefault",
    "update", "sort", "reverse",
})

#: Constructors whose module-level result counts as a mutable global.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "deque", "defaultdict", "Counter",
    "OrderedDict",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _origins_to_json(origins: Iterable[Origin]) -> List[List[str]]:
    return [[kind, detail] for kind, detail in sorted(set(origins))]


def _origins_from_json(data: Iterable[Sequence[str]]) -> List[Origin]:
    return [(str(pair[0]), str(pair[1])) for pair in data]


def unit_family(identifier: Optional[str]) -> Optional[str]:
    """``"mhz"``/``"mbps"`` from a trailing unit suffix, else None."""
    if not identifier:
        return None
    tail = identifier.lower().rsplit("_", 1)[-1]
    return tail if tail in ("mhz", "mbps") else None


def _trailing_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``chain`` is the callee exactly as written (``"time.time"``,
    ``"self._engine.export_state"``); resolution to a project function
    happens later.  ``arg_units`` entries are a unit family, a
    ``"call:<index>"`` reference to another call site whose return unit
    decides, or None.  ``arg_types`` entries are candidate value-type
    descriptors: ``["ctor", "Engine"]``, ``["name", "spec"]`` (typed
    via ``var_types``), or ``["selfattr", "_engine"]``.
    """

    index: int
    lineno: int
    col: int
    chain: Optional[str]
    arg_origins: List[List[Origin]] = field(default_factory=list)
    kw_origins: Dict[str, List[Origin]] = field(default_factory=dict)
    arg_units: List[Optional[str]] = field(default_factory=list)
    kw_units: Dict[str, Optional[str]] = field(default_factory=dict)
    arg_types: List[Optional[List[str]]] = field(default_factory=list)
    kw_types: Dict[str, Optional[List[str]]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "lineno": self.lineno,
            "col": self.col, "chain": self.chain,
            "arg_origins": [_origins_to_json(o)
                            for o in self.arg_origins],
            "kw_origins": {k: _origins_to_json(o)
                           for k, o in sorted(self.kw_origins.items())},
            "arg_units": list(self.arg_units),
            "kw_units": dict(sorted(self.kw_units.items())),
            "arg_types": list(self.arg_types),
            "kw_types": dict(sorted(self.kw_types.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            index=int(data["index"]), lineno=int(data["lineno"]),
            col=int(data["col"]), chain=data.get("chain"),
            arg_origins=[_origins_from_json(o)
                         for o in data.get("arg_origins", [])],
            kw_origins={str(k): _origins_from_json(o)
                        for k, o in data.get("kw_origins", {}).items()},
            arg_units=[u if u is None else str(u)
                       for u in data.get("arg_units", [])],
            kw_units={str(k): (u if u is None else str(u))
                      for k, u in data.get("kw_units", {}).items()},
            arg_types=[t if t is None else [str(p) for p in t]
                       for t in data.get("arg_types", [])],
            kw_types={str(k): (t if t is None
                               else [str(p) for p in t])
                      for k, t in data.get("kw_types", {}).items()},
        )


@dataclass
class FunctionSummary:
    """Everything the cross-module stages need about one function.

    ``qualname`` is the module-local qualified name
    (``"AdmissionService.tick"`` for methods, bare for functions).
    ``global_writes`` rows are ``[kind, name, lineno]`` with kind
    ``"rebind"`` (``global x; x = ...``) or ``"mutate"`` (in-place
    write to a module-level container).  ``attr_stores`` rows are
    ``[attr, origins, lineno]`` for ``self.attr = value``;
    ``attr_types``/``attr_lambdas`` record the stored value's type
    chain / lambda-ness for the pickling closure.
    """

    qualname: str
    lineno: int
    is_async: bool
    params: List[str] = field(default_factory=list)
    param_chains: List[List[str]] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    return_origins: List[Origin] = field(default_factory=list)
    return_units: List[str] = field(default_factory=list)
    return_calls: List[int] = field(default_factory=list)
    global_writes: List[List[Any]] = field(default_factory=list)
    attr_stores: List[List[Any]] = field(default_factory=list)
    attr_types: List[List[Any]] = field(default_factory=list)
    attr_lambdas: List[List[Any]] = field(default_factory=list)
    unit_assigns: List[List[Any]] = field(default_factory=list)
    var_types: Dict[str, List[str]] = field(default_factory=dict)
    var_attrs: Dict[str, str] = field(default_factory=dict)

    @property
    def class_name(self) -> Optional[str]:
        """Enclosing class for methods, None for plain functions."""
        if "." in self.qualname:
            return self.qualname.rsplit(".", 1)[0]
        return None

    def param_offset(self) -> int:
        """1 when the first parameter is a bound receiver."""
        if self.params and self.params[0] in ("self", "cls"):
            return 1
        return 0

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "lineno": self.lineno,
            "is_async": self.is_async, "params": list(self.params),
            "param_chains": [list(c) for c in self.param_chains],
            "calls": [c.to_dict() for c in self.calls],
            "return_origins": _origins_to_json(self.return_origins),
            "return_units": sorted(set(self.return_units)),
            "return_calls": sorted(set(self.return_calls)),
            "global_writes": [list(row) for row in self.global_writes],
            "attr_stores": [[row[0], _origins_to_json(row[1]), row[2]]
                            for row in self.attr_stores],
            "attr_types": [list(row) for row in self.attr_types],
            "attr_lambdas": [list(row) for row in self.attr_lambdas],
            "unit_assigns": [list(row) for row in self.unit_assigns],
            "var_types": {k: list(v)
                          for k, v in sorted(self.var_types.items())},
            "var_attrs": dict(sorted(self.var_attrs.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            lineno=int(data["lineno"]),
            is_async=bool(data["is_async"]),
            params=[str(p) for p in data.get("params", [])],
            param_chains=[[str(c) for c in chains]
                          for chains in data.get("param_chains", [])],
            calls=[CallSite.from_dict(c)
                   for c in data.get("calls", [])],
            return_origins=_origins_from_json(
                data.get("return_origins", [])),
            return_units=[str(u) for u in data.get("return_units", [])],
            return_calls=[int(i) for i in data.get("return_calls", [])],
            global_writes=[[str(r[0]), str(r[1]), int(r[2])]
                           for r in data.get("global_writes", [])],
            attr_stores=[[str(r[0]), _origins_from_json(r[1]),
                          int(r[2])]
                         for r in data.get("attr_stores", [])],
            attr_types=[[str(r[0]), str(r[1]), int(r[2])]
                        for r in data.get("attr_types", [])],
            attr_lambdas=[[str(r[0]), int(r[1])]
                          for r in data.get("attr_lambdas", [])],
            unit_assigns=[[str(r[0]), int(r[1]), int(r[2])]
                          for r in data.get("unit_assigns", [])],
            var_types={str(k): [str(c) for c in v]
                       for k, v in data.get("var_types", {}).items()},
            var_attrs={str(k): str(v)
                       for k, v in data.get("var_attrs", {}).items()},
        )


@dataclass
class ClassSummary:
    """One top-level class: bases, methods, annotated fields."""

    name: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    fields: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "lineno": self.lineno,
            "bases": list(self.bases), "methods": sorted(self.methods),
            "fields": {k: list(v)
                       for k, v in sorted(self.fields.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=str(data["name"]), lineno=int(data["lineno"]),
            bases=[str(b) for b in data.get("bases", [])],
            methods=[str(m) for m in data.get("methods", [])],
            fields={str(k): [str(c) for c in v]
                    for k, v in data.get("fields", {}).items()},
        )


@dataclass
class ModuleSummary:
    """The file-local facts one module contributes to the project."""

    relpath: str
    module: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    globals: Dict[str, str] = field(default_factory=dict)
    pool_targets: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath, "module": self.module,
            "imports": dict(sorted(self.imports.items())),
            "functions": {k: f.to_dict()
                          for k, f in sorted(self.functions.items())},
            "classes": {k: c.to_dict()
                        for k, c in sorted(self.classes.items())},
            "globals": dict(sorted(self.globals.items())),
            "pool_targets": sorted(set(self.pool_targets)),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            relpath=str(data["relpath"]), module=str(data["module"]),
            imports={str(k): str(v)
                     for k, v in data.get("imports", {}).items()},
            functions={str(k): FunctionSummary.from_dict(f)
                       for k, f in data.get("functions", {}).items()},
            classes={str(k): ClassSummary.from_dict(c)
                     for k, c in data.get("classes", {}).items()},
            globals={str(k): str(v)
                     for k, v in data.get("globals", {}).items()},
            pool_targets=[str(t)
                          for t in data.get("pool_targets", [])],
        )


def module_dotted_name(relpath: str) -> str:
    """``repro/service/loop.py`` -> ``repro.service.loop``."""
    trimmed = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = trimmed.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else trimmed


def _collect_imports(tree: ast.Module, module: str,
                     is_package: bool) -> Dict[str, str]:
    """Local name -> fully-qualified origin, relative imports resolved."""
    table: Dict[str, str] = {}
    parts = module.split(".") if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                drop = node.level - (1 if is_package else 0)
                base = parts[:len(parts) - drop] if drop > 0 \
                    else list(parts)
                prefix = ".".join(base + ([node.module]
                                          if node.module else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{prefix}.{alias.name}"
    return table


def _annotation_chains(node: Optional[ast.AST]) -> List[str]:
    """Every dotted Name/Attribute chain inside an annotation."""
    if node is None:
        return []
    chains: List[str] = []
    for inner in ast.walk(node):
        if isinstance(inner, (ast.Name, ast.Attribute)):
            chain = dotted_name(inner)
            if chain is not None and chain not in chains:
                chains.append(chain)
    # Attribute chains are walked outer-first; keep only maximal ones
    # ("datetime.datetime" should not also yield "datetime").
    maximal = [c for c in chains
               if not any(other != c and other.startswith(c + ".")
                          for other in chains)]
    return maximal


def _global_kind(value: Optional[ast.AST]) -> str:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        chain = dotted_name(value.func)
        if chain is not None:
            leaf = chain.rsplit(".", 1)[-1]
            if leaf in _MUTABLE_CTORS:
                return "mutable"
            if leaf == "ContextVar":
                return "contextvar"
    return "other"


class _FunctionExtractor:
    """Single-function origin/call extraction (see module docstring)."""

    def __init__(self, node: ast.AST, qualname: str) -> None:
        self.node = node
        self.qualname = qualname
        args = getattr(node, "args", None)
        self.params: List[str] = []
        self.param_chains: List[List[str]] = []
        if args is not None:
            all_args = (list(getattr(args, "posonlyargs", []))
                        + list(args.args) + list(args.kwonlyargs))
            for arg in all_args:
                self.params.append(arg.arg)
                self.param_chains.append(
                    _annotation_chains(arg.annotation))
        self.env: Dict[str, Set[Origin]] = {
            name: {("param", str(i))}
            for i, name in enumerate(self.params)}
        self.local_names: Set[str] = set(self.params)
        self.declared_globals: Set[str] = set()
        self.call_nodes: List[ast.Call] = []
        self.call_index: Dict[int, int] = {}
        self.var_types: Dict[str, List[str]] = {}
        self.var_attrs: Dict[str, str] = {}
        for shallow in self._shallow_nodes():
            if isinstance(shallow, ast.Call):
                self.call_index[id(shallow)] = len(self.call_nodes)
                self.call_nodes.append(shallow)
            elif isinstance(shallow, ast.Global):
                self.declared_globals.update(shallow.names)

    def _shallow_nodes(self) -> Iterable[ast.AST]:
        """Walk the body without entering nested scopes."""
        stack: List[ast.AST] = list(
            ast.iter_child_nodes(self.node))[::-1]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _SCOPE_NODES):
                continue
            stack.extend(list(ast.iter_child_nodes(node))[::-1])

    # -- origins -------------------------------------------------------
    def origins(self, node: Optional[ast.AST]) -> Set[Origin]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                return {("attr", node.attr)}
            return self.origins(node.value)
        if isinstance(node, ast.Call):
            index = self.call_index.get(id(node))
            if index is None:
                return set()
            return {("call", str(index))}
        if isinstance(node, ast.Lambda):
            return {("lambda", "")}
        if isinstance(node, ast.Await):
            return self.origins(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.origins(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.origins(node.left) | self.origins(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.origins(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Origin] = set()
            for value in node.values:
                out |= self.origins(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.origins(node.left)
            for comparator in node.comparators:
                out |= self.origins(comparator)
            return out
        if isinstance(node, ast.IfExp):
            return self.origins(node.body) | self.origins(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.origins(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                out |= self.origins(key)
            for value in node.values:
                out |= self.origins(value)
            return out
        if isinstance(node, ast.Subscript):
            return self.origins(node.value)
        if isinstance(node, ast.Starred):
            return self.origins(node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                out |= self.origins(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.origins(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            out = set()
            for generator in node.generators:
                out |= self.origins(generator.iter)
            return out
        if isinstance(node, ast.DictComp):
            out = set()
            for generator in node.generators:
                out |= self.origins(generator.iter)
            return out
        return set()

    # -- binding fixpoint ---------------------------------------------
    def _bind(self, name: str, origins: Set[Origin]) -> bool:
        self.local_names.add(name)
        current = self.env.setdefault(name, set())
        before = len(current)
        current |= origins
        return len(current) != before

    def _bind_target(self, target: ast.AST,
                     origins: Set[Origin]) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            changed = self._bind(target.id, origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                changed = self._bind_target(element, origins) or changed
        elif isinstance(target, ast.Starred):
            changed = self._bind_target(target.value, origins)
        return changed

    def _value_type(self, value: ast.AST) -> Optional[List[str]]:
        """Candidate type descriptor of an expression, if visible."""
        if isinstance(value, ast.Call):
            chain = dotted_name(value.func)
            if chain is not None:
                return ["ctor", chain]
            return None
        if isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id == "self":
            return ["selfattr", value.attr]
        if isinstance(value, ast.Name):
            return ["name", value.id]
        return None

    def _run_bindings(self) -> None:
        for _ in range(10):
            changed = False
            for node in self._shallow_nodes():
                if isinstance(node, ast.Assign):
                    origins = self.origins(node.value)
                    for target in node.targets:
                        changed = self._bind_target(target, origins) \
                            or changed
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None:
                        changed = self._bind_target(
                            node.target, self.origins(node.value)) \
                            or changed
                elif isinstance(node, ast.AugAssign):
                    changed = self._bind_target(
                        node.target, self.origins(node.value)) \
                        or changed
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    changed = self._bind_target(
                        node.target, self.origins(node.iter)) or changed
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None:
                            changed = self._bind_target(
                                item.optional_vars,
                                self.origins(item.context_expr)) \
                                or changed
                elif isinstance(node, ast.NamedExpr):
                    changed = self._bind(
                        node.target.id,
                        self.origins(node.value)) or changed
            if not changed:
                break

    def _record_var_types(self) -> None:
        for node in self._shallow_nodes():
            value: Optional[ast.AST] = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Call):
                    chain = dotted_name(value.func)
                    if chain is not None:
                        self.var_types.setdefault(
                            target.id, []).append(chain)
                elif isinstance(value, ast.Attribute) \
                        and isinstance(value.value, ast.Name) \
                        and value.value.id == "self":
                    self.var_attrs.setdefault(target.id, value.attr)

    def _is_module_global(self, name: str,
                          module_globals: Dict[str, str]) -> bool:
        if name in self.declared_globals:
            return True
        return name in module_globals and name not in self.local_names

    # -- extraction ----------------------------------------------------
    def extract(self, module_globals: Dict[str, str]
                ) -> FunctionSummary:
        self._run_bindings()
        self._record_var_types()
        summary = FunctionSummary(
            qualname=self.qualname,
            lineno=getattr(self.node, "lineno", 1),
            is_async=isinstance(self.node, ast.AsyncFunctionDef),
            params=self.params, param_chains=self.param_chains,
            var_types={k: sorted(set(v))
                       for k, v in self.var_types.items()},
            var_attrs=dict(self.var_attrs))

        for call in self.call_nodes:
            site = CallSite(
                index=self.call_index[id(call)],
                lineno=call.lineno, col=call.col_offset,
                chain=dotted_name(call.func))
            for arg in call.args:
                site.arg_origins.append(
                    sorted(self.origins(arg)))
                site.arg_units.append(self._arg_unit(arg))
                site.arg_types.append(self._arg_type(arg))
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                site.kw_origins[keyword.arg] = sorted(
                    self.origins(keyword.value))
                site.kw_units[keyword.arg] = self._arg_unit(
                    keyword.value)
                site.kw_types[keyword.arg] = self._arg_type(
                    keyword.value)
            summary.calls.append(site)

        return_origins: Set[Origin] = set()
        for node in self._shallow_nodes():
            if isinstance(node, ast.Return) and node.value is not None:
                return_origins |= self.origins(node.value)
                family = unit_family(
                    _trailing_identifier(node.value))
                if family is not None:
                    summary.return_units.append(family)
                if isinstance(node.value, ast.Call):
                    index = self.call_index.get(id(node.value))
                    if index is not None:
                        summary.return_calls.append(index)
            elif isinstance(node, ast.Assign):
                self._extract_assign(node, module_globals, summary)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None:
                    self._extract_store(node.target, node.value,
                                        node.lineno, module_globals,
                                        summary)
            elif isinstance(node, ast.AugAssign):
                self._extract_store(node.target, node.value,
                                    node.lineno, module_globals,
                                    summary, augmented=True)
            elif isinstance(node, ast.Expr) \
                    and isinstance(node.value, ast.Call):
                self._extract_mutator_call(node.value, module_globals,
                                           summary)
        summary.return_origins = sorted(return_origins)
        return summary

    def _arg_unit(self, value: ast.AST) -> Optional[str]:
        family = unit_family(_trailing_identifier(value))
        if family is not None:
            return family
        if isinstance(value, ast.Call):
            index = self.call_index.get(id(value))
            if index is not None:
                return f"call:{index}"
        return None

    def _arg_type(self, value: ast.AST) -> Optional[List[str]]:
        descriptor = self._value_type(value)
        if descriptor is not None and descriptor[0] == "name":
            name = descriptor[1]
            if name in self.var_types:
                return ["ctor", self.var_types[name][0]]
            index = self.param_index_of(name)
            if index is not None and self.param_chains[index]:
                return ["ctor", self.param_chains[index][0]]
            return descriptor
        return descriptor

    def param_index_of(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def _extract_assign(self, node: ast.Assign,
                        module_globals: Dict[str, str],
                        summary: FunctionSummary) -> None:
        for target in node.targets:
            self._extract_store(target, node.value, node.lineno,
                                module_globals, summary)
        if len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            family = unit_family(node.targets[0].id)
            index = self.call_index.get(id(node.value))
            if family is not None and index is not None:
                summary.unit_assigns.append(
                    [family, index, node.lineno])

    def _extract_store(self, target: ast.AST, value: ast.AST,
                       lineno: int, module_globals: Dict[str, str],
                       summary: FunctionSummary,
                       augmented: bool = False) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                summary.global_writes.append(
                    ["rebind", target.id, lineno])
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                summary.attr_stores.append(
                    [target.attr, sorted(self.origins(value)), lineno])
                if isinstance(value, ast.Lambda):
                    summary.attr_lambdas.append([target.attr, lineno])
                descriptor = self._attr_type_chains(value)
                for chain in descriptor:
                    summary.attr_types.append(
                        [target.attr, chain, lineno])
            elif isinstance(base, ast.Name) \
                    and self._is_module_global(base.id, module_globals):
                summary.global_writes.append(
                    ["mutate", base.id, lineno])
        elif isinstance(target, ast.Subscript):
            head = target.value
            while isinstance(head, (ast.Subscript, ast.Attribute)):
                head = head.value
            if isinstance(head, ast.Name) \
                    and self._is_module_global(head.id, module_globals):
                summary.global_writes.append(
                    ["mutate", head.id, lineno])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._extract_store(element, value, lineno,
                                    module_globals, summary,
                                    augmented=augmented)

    def _attr_type_chains(self, value: ast.AST) -> List[str]:
        if isinstance(value, ast.Call):
            chain = dotted_name(value.func)
            return [chain] if chain is not None else []
        if isinstance(value, ast.Name):
            if value.id in self.var_types:
                return list(self.var_types[value.id])
            index = self.param_index_of(value.id)
            if index is not None:
                return list(self.param_chains[index])
        return []

    def _extract_mutator_call(self, call: ast.Call,
                              module_globals: Dict[str, str],
                              summary: FunctionSummary) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr not in MUTATOR_METHODS:
            return
        base = call.func.value
        if isinstance(base, ast.Name) \
                and self._is_module_global(base.id, module_globals):
            summary.global_writes.append(
                ["mutate", base.id, call.lineno])


def _module_globals(tree: ast.Module) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for node in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name):
                kind = _global_kind(value)
                # A name is as mutable as its most mutable binding.
                if table.get(target.id) != "mutable":
                    table[target.id] = kind
    return table


def _pool_targets(tree: ast.Module) -> List[str]:
    targets: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in ("submit", "map"):
            continue
        if node.args and isinstance(node.args[0], ast.Name):
            targets.append(node.args[0].id)
    return sorted(set(targets))


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Extract the file-local :class:`ModuleSummary` of one module."""
    is_package = module.relpath.endswith("__init__.py")
    dotted = module_dotted_name(module.relpath)
    summary = ModuleSummary(
        relpath=module.relpath, module=dotted,
        imports=_collect_imports(module.tree, dotted, is_package),
        globals=_module_globals(module.tree),
        pool_targets=_pool_targets(module.tree))
    for node in module.tree.body:
        if isinstance(node, _FUNCTION_NODES):
            extractor = _FunctionExtractor(node, node.name)
            summary.functions[node.name] = extractor.extract(
                summary.globals)
        elif isinstance(node, ast.ClassDef):
            cls = ClassSummary(
                name=node.name, lineno=node.lineno,
                bases=[chain for chain in
                       (dotted_name(base) for base in node.bases)
                       if chain is not None])
            for item in node.body:
                if isinstance(item, _FUNCTION_NODES):
                    qualname = f"{node.name}.{item.name}"
                    extractor = _FunctionExtractor(item, qualname)
                    summary.functions[qualname] = extractor.extract(
                        summary.globals)
                    cls.methods.append(item.name)
                elif isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name):
                    cls.fields[item.target.id] = _annotation_chains(
                        item.annotation)
            summary.classes[node.name] = cls
    return summary
