"""Rule framework for the determinism / domain static-analysis pass.

The pass is a small, dependency-free AST walker.  Each rule is a class
with an id, a rationale, and a ``check`` hook; file rules see one
parsed module at a time, project rules (:class:`ProjectRule`) see the
whole scanned tree at once and can enforce cross-module consistency
(e.g. EVT001's EventKind coverage).

Suppression uses a project-specific pragma so it can never collide
with flake8/ruff ``# noqa`` handling::

    reading = time.perf_counter()  # repro: noqa DET001 -- advisory metric

A bare ``# repro: noqa`` suppresses every rule on its line; one or
more comma/space-separated rule ids suppress only those rules.  The
text after ``--`` is a free-form justification (encouraged, unchecked).
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional,
                    Sequence, Set, Tuple, Type, Union)

from ..exceptions import ConfigurationError
from .findings import Finding, sort_findings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import SummaryCache
    from .dataflow import ProjectContext

#: Sentinel noqa entry meaning "every rule suppressed on this line".
ALL_RULES = "*"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?P<codes>(?:[\s:,]+[A-Z]{3}\d{3})*)"
    r"(?:\s*--\s*(?P<why>.*))?",
)
_CODE_RE = re.compile(r"[A-Z]{3}\d{3}")


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file handed to the rules.

    Attributes:
        relpath: POSIX path relative to the scanned root - what
            findings report and what allowlists match against.
        tree: the parsed AST.
        lines: raw source lines (1-based access via :meth:`line`).
        noqa: line number -> set of suppressed rule ids
            (:data:`ALL_RULES` means all).
        digest: sha256 of the raw source - the incremental cache key.
    """

    relpath: str
    tree: ast.Module
    lines: Tuple[str, ...]
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    digest: str = ""

    def line(self, lineno: int) -> str:
        """The stripped source line at ``lineno`` (1-based)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        """True when a ``# repro: noqa`` pragma covers this finding."""
        codes = self.noqa.get(lineno)
        if codes is None:
            return False
        return ALL_RULES in codes or rule_id in codes

    def matches(self, suffixes: Sequence[str]) -> bool:
        """True when the module path ends with any of the suffixes."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)


def parse_noqa(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Extract ``# repro: noqa`` pragmas from raw source lines."""
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = _CODE_RE.findall(match.group("codes") or "")
        table[lineno] = set(codes) if codes else {ALL_RULES}
    return table


def module_from_source(source: str, relpath: str) -> ModuleInfo:
    """Parse in-memory source into a :class:`ModuleInfo`.

    Raises:
        ConfigurationError: when the source does not parse - the scan
            cannot vouch for a tree it cannot read.
    """
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        raise ConfigurationError(
            f"{relpath}: cannot parse: {error}") from error
    lines = tuple(source.splitlines())
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return ModuleInfo(relpath=relpath, tree=tree, lines=lines,
                      noqa=parse_noqa(lines), digest=digest)


class Rule:
    """Base class of every check: one rule id, one ``check`` hook."""

    #: Identifier reported in findings and matched by noqa pragmas.
    rule_id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the project enforces this (the bug class it prevents).
    rationale: str = ""
    #: Default fix hint attached to findings.
    hint: str = ""
    #: Relpath suffixes exempt from this rule.
    allowlist: Tuple[str, ...] = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        """Build a finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=self.rule_id, path=module.relpath,
                       line=lineno, col=col, message=message,
                       hint=self.hint if hint is None else hint,
                       snippet=module.line(lineno))


class ProjectRule(Rule):
    """A rule that needs the whole scanned tree at once."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[ModuleInfo]
                      ) -> Iterator[Finding]:
        """Yield findings after seeing every scanned module."""
        raise NotImplementedError
        yield  # pragma: no cover


class DataflowRule(Rule):
    """A rule over the whole-program call-graph/dataflow context.

    The framework builds one :class:`~repro.analysis.dataflow.ProjectContext`
    per scan (summaries, symbol table, call graph) and hands it to
    every registered dataflow rule; each rule layers its own taint or
    reachability query on top.  ``version`` participates in the
    incremental cache key - bump it when the rule's semantics change.
    """

    #: Cache-invalidation version of this rule's semantics.
    version: int = 1

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_context(self, context: "ProjectContext"
                      ) -> Iterator[Finding]:
        """Yield findings from the built whole-program context."""
        raise NotImplementedError
        yield  # pragma: no cover

    def context_finding(self, context: "ProjectContext", relpath: str,
                        lineno: int, message: str, col: int = 0,
                        hint: Optional[str] = None) -> Finding:
        """Build a finding anchored at a (relpath, line) location."""
        return Finding(rule=self.rule_id, path=relpath, line=lineno,
                       col=col, message=message,
                       hint=self.hint if hint is None else hint,
                       snippet=context.snippet(relpath, lineno))


#: rule id -> rule class, in catalogue order.
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ConfigurationError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested subset of the registry.

    Raises:
        ConfigurationError: on unknown rule ids.
    """
    known = set(RULES)
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise ConfigurationError(
                f"unknown rule {requested!r}; known: {', '.join(sorted(known))}")
    active = list(select) if select else list(RULES)
    dropped = set(ignore or [])
    return [RULES[rule_id]() for rule_id in active
            if rule_id not in dropped]


# ----------------------------------------------------------------------
# AST helpers shared by the rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (None when not a plain chain)."""
    return dotted_name(node.func)


# ----------------------------------------------------------------------
# Tree scanning
# ----------------------------------------------------------------------
@dataclass
class AnalysisReport:
    """Outcome of one scan, before baseline filtering.

    Attributes:
        findings: surviving findings in canonical order.
        files_scanned: number of python files parsed.
        suppressed: findings silenced by ``# repro: noqa`` pragmas.
        cache_hits: module summaries served from the incremental
            cache (0 when no dataflow rule ran or no cache was given).
        cache_misses: module summaries extracted fresh this scan.
        graph_nodes: project functions in the call graph.
        graph_edges: resolved + widened call edges.
        context: the built whole-program context (None when no
            dataflow rule ran) - the CLI's DOT export reads it.
    """

    findings: List[Finding]
    files_scanned: int
    suppressed: int
    cache_hits: int = 0
    cache_misses: int = 0
    graph_nodes: int = 0
    graph_edges: int = 0
    context: Optional["ProjectContext"] = None


def iter_python_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    if not root.is_dir():
        raise ConfigurationError(f"no such file or directory: {root}")
    return sorted(path for path in root.rglob("*.py")
                  if "__pycache__" not in path.parts)


def load_modules(paths: Sequence[Path]) -> List[ModuleInfo]:
    """Parse every python file under the given roots."""
    modules: List[ModuleInfo] = []
    for root in paths:
        base = root if root.is_dir() else root.parent
        for file_path in iter_python_files(root):
            relpath = file_path.relative_to(base).as_posix()
            modules.append(module_from_source(
                file_path.read_text(encoding="utf-8"), relpath))
    return modules


def cache_version() -> str:
    """Invalidation token: extractor version + dataflow rule versions.

    Summaries are rule-independent, but the committed CI cache key is
    "(file content hash, rule version)": bumping any dataflow rule's
    ``version`` - or the extractor - discards every cached entry.
    """
    from .symbols import EXTRACTOR_VERSION

    parts = [f"extractor={EXTRACTOR_VERSION}"]
    for rule_id, cls in sorted(RULES.items()):
        if issubclass(cls, DataflowRule):
            parts.append(f"{rule_id}={cls.version}")
    return ";".join(parts)


def run_rules(modules: Sequence[ModuleInfo],
              rules: Sequence[Rule],
              cache: Optional["SummaryCache"] = None
              ) -> AnalysisReport:
    """Run rules over parsed modules, applying noqa suppression.

    The whole-program context (summaries, call graph) is built once,
    lazily, iff any :class:`DataflowRule` is active; ``cache`` (when
    given) serves unchanged modules' summaries by content hash.
    """
    kept: List[Finding] = []
    suppressed = 0
    by_relpath = {module.relpath: module for module in modules}

    def admit(finding: Finding) -> None:
        nonlocal suppressed
        module = by_relpath.get(finding.path)
        if module is not None and module.suppressed(finding.line,
                                                    finding.rule):
            suppressed += 1
        else:
            kept.append(finding)

    context: Optional["ProjectContext"] = None
    if any(isinstance(rule, DataflowRule) for rule in rules):
        from .dataflow import build_context

        context = build_context(modules, cache=cache)

    for rule in rules:
        if isinstance(rule, DataflowRule):
            assert context is not None
            for finding in rule.check_context(context):
                admit(finding)
        elif isinstance(rule, ProjectRule):
            for finding in rule.check_project(modules):
                admit(finding)
        else:
            for module in modules:
                if module.matches(rule.allowlist):
                    continue
                for finding in rule.check(module):
                    admit(finding)
    report = AnalysisReport(findings=sort_findings(kept),
                            files_scanned=len(modules),
                            suppressed=suppressed)
    if context is not None:
        report.cache_hits = context.cache_hits
        report.cache_misses = context.cache_misses
        report.graph_nodes = len(context.graph.nodes)
        report.graph_edges = context.graph.edge_count
        report.context = context
    return report


def run_analysis(paths: Sequence[Path],
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None,
                 cache_path: Optional[Union[str, Path]] = None
                 ) -> AnalysisReport:
    """Scan source roots with the (subset of the) registered rules.

    ``cache_path`` enables the incremental summary cache: unchanged
    files (by content hash) skip extraction, and the file is
    rewritten - pruned to the scanned set - after the run.
    """
    modules = load_modules(paths)
    rules = resolve_rules(select, ignore)
    cache: Optional["SummaryCache"] = None
    if cache_path is not None \
            and any(isinstance(rule, DataflowRule) for rule in rules):
        from .cache import SummaryCache

        cache = SummaryCache(cache_path, version=cache_version())
    report = run_rules(modules, rules, cache=cache)
    if cache is not None:
        cache.save(keep=[module.relpath for module in modules])
    return report


def analyze_source(source: str, relpath: str = "module.py",
                   select: Optional[Sequence[str]] = None
                   ) -> List[Finding]:
    """Run rules over one in-memory module (the test harness surface)."""
    report = run_rules([module_from_source(source, relpath)],
                       resolve_rules(select))
    return report.findings
