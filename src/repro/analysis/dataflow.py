"""Forward taint/dataflow over the project call graph.

:func:`build_context` assembles everything the interprocedural rules
share: per-module summaries (cache-aware), the symbol table, and the
call graph.  :class:`TaintAnalysis` then runs a forward fixpoint for
one rule's ``(sources, sanitizers)`` declaration:

* a call to a *source* (``time.time``, ``os.urandom``, ...) taints its
  return value;
* taint propagates through assignments (tracked as value *origins* by
  :mod:`repro.analysis.symbols`), through arguments into resolved
  project callees' parameters, through their returns back to call
  sites, and through ``self.attr`` stores into every reader of that
  attribute;
* calls that cannot be resolved (externals, widened method calls) pass
  taint from arguments to their return value - the conservative
  over-approximation that keeps ``float(tainted)`` or
  ``f"{tainted}"`` tainted;
* functions defined in a *sanitizer* module are opaque: nothing inside
  them taints, and calls into them return clean values.  This is how
  the telemetry exposition layer (metrics registries, scrape handlers)
  is declared out of scope for DET010.

Every tainted fact carries a human-readable witness chain
(``"time.perf_counter() at repro/service/loop.py:343 -> ..."``) so a
finding three call-hops from its source still names the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Tuple)

from .callgraph import (CallGraph, Resolution, SymbolTable,
                        build_callgraph, node_key, split_node_key)
from .cache import SummaryCache
from .framework import ModuleInfo
from .symbols import (CallSite, FunctionSummary, ModuleSummary, Origin,
                      summarize_module)

#: Longest witness chain carried on a finding message.
_WITNESS_CAP = 280


@dataclass
class ProjectContext:
    """Shared whole-program state handed to the dataflow rules."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    summaries: Dict[str, ModuleSummary] = field(default_factory=dict)
    table: SymbolTable = field(
        default_factory=lambda: SymbolTable({}))
    graph: CallGraph = field(default_factory=CallGraph)
    cache_hits: int = 0
    cache_misses: int = 0

    def snippet(self, relpath: str, lineno: int) -> str:
        module = self.modules.get(relpath)
        return module.line(lineno) if module is not None else ""

    def functions(self) -> Iterable[Tuple[str, ModuleSummary,
                                          FunctionSummary]]:
        """Every project function as ``(node key, module, function)``,
        in deterministic order."""
        for relpath in sorted(self.summaries):
            summary = self.summaries[relpath]
            for qualname in sorted(summary.functions):
                yield (node_key(relpath, qualname), summary,
                       summary.functions[qualname])


def build_context(modules: Sequence[ModuleInfo],
                  cache: Optional[SummaryCache] = None
                  ) -> ProjectContext:
    """Summarize (or cache-load) every module and build the graph."""
    context = ProjectContext()
    for module in modules:
        context.modules[module.relpath] = module
        summary: Optional[ModuleSummary] = None
        if cache is not None:
            summary = cache.get(module.relpath, module.digest)
        if summary is None:
            summary = summarize_module(module)
            if cache is not None:
                cache.put(module.relpath, module.digest, summary)
        context.summaries[module.relpath] = summary
    if cache is not None:
        context.cache_hits = cache.hits
        context.cache_misses = cache.misses
    context.table = SymbolTable(context.summaries)
    context.graph = build_callgraph(context.summaries, context.table)
    return context


def _clip(witness: str) -> str:
    if len(witness) <= _WITNESS_CAP:
        return witness
    return witness[:140] + " ... " + witness[-120:]


class TaintAnalysis:
    """One rule's taint fixpoint over a built :class:`ProjectContext`.

    Args:
        context: the shared project state.
        sources: fully-qualified external callables whose return
            values are tainted.
        sanitizer_suffixes: module relpath suffixes whose functions
            are opaque to this analysis (see the module docstring).
    """

    def __init__(self, context: ProjectContext,
                 sources: FrozenSet[str],
                 sanitizer_suffixes: Tuple[str, ...] = ()) -> None:
        self.context = context
        self.sources = sources
        self.sanitizer_suffixes = sanitizer_suffixes
        #: (function node key, call index) -> witness chain.
        self.call_taint: Dict[Tuple[str, int], str] = {}
        #: function node key -> witness chain for its return value.
        self.ret_taint: Dict[str, str] = {}
        #: (function node key, parameter index) -> witness chain.
        self.param_taint: Dict[Tuple[str, int], str] = {}
        #: (class node key, attribute name) -> witness chain.
        self.attr_taint: Dict[Tuple[str, str], str] = {}
        self._run()

    # -- queries -------------------------------------------------------
    def sanitized_path(self, relpath: str) -> bool:
        return any(relpath.endswith(suffix)
                   for suffix in self.sanitizer_suffixes)

    def origin_witness(self, key: str, function: FunctionSummary,
                       origin: Origin) -> Optional[str]:
        """Witness chain if this origin is tainted inside ``key``."""
        kind, detail = origin
        if kind == "param":
            return self.param_taint.get((key, int(detail)))
        if kind == "call":
            return self.call_taint.get((key, int(detail)))
        if kind == "attr" and function.class_name is not None:
            relpath, _ = split_node_key(key)
            class_key = node_key(relpath, function.class_name)
            return self.attr_taint.get((class_key, detail))
        return None

    def origins_witness(self, key: str, function: FunctionSummary,
                        origins: Iterable[Origin]) -> Optional[str]:
        for origin in sorted(origins):
            witness = self.origin_witness(key, function, origin)
            if witness is not None:
                return witness
        return None

    # -- fixpoint ------------------------------------------------------
    def _targets(self, resolution: Resolution
                 ) -> List[Tuple[str, FunctionSummary]]:
        out: List[Tuple[str, FunctionSummary]] = []
        for target in resolution.functions:
            function = self.context.table.function(target)
            if function is not None:
                out.append((target, function))
        return out

    def _all_sanitized(self, resolution: Resolution) -> bool:
        keys = list(resolution.functions)
        if resolution.class_key is not None:
            keys.append(resolution.class_key)
        if not keys:
            return False
        return all(self.sanitized_path(split_node_key(k)[0])
                   for k in keys)

    def site_arg_witness(self, key: str, function: FunctionSummary,
                          site_index: int) -> Optional[str]:
        site = function.calls[site_index]
        for origins in site.arg_origins:
            witness = self.origins_witness(key, function, origins)
            if witness is not None:
                return witness
        for name in sorted(site.kw_origins):
            witness = self.origins_witness(key, function,
                                           site.kw_origins[name])
            if witness is not None:
                return witness
        return None

    def _run(self) -> None:
        for _ in range(60):
            if not self._pass():
                break

    def _set(self, table: Dict[Any, str], fact: Any,
             witness: str) -> bool:
        if fact in table:
            return False
        table[fact] = _clip(witness)
        return True

    def _pass(self) -> bool:
        changed = False
        for key, summary, function in self.context.functions():
            if self.sanitized_path(summary.relpath):
                continue
            for site in function.calls:
                resolution = self.context.graph.resolution(
                    key, site.index)
                fact = (key, site.index)
                # 1. source call -> tainted return.
                if resolution.kind == "external" \
                        and resolution.qualified in self.sources:
                    changed = self._set(
                        self.call_taint, fact,
                        f"{resolution.qualified}() at "
                        f"{summary.relpath}:{site.lineno}") or changed
                    continue
                sanitized = self._all_sanitized(resolution)
                targets = [] if sanitized \
                    else self._targets(resolution)
                if resolution.kind in ("func", "class") \
                        and (targets or sanitized):
                    # 2. resolved project callee: returns carry its
                    # ret-taint; arguments taint its parameters.
                    for target, callee in targets:
                        witness = self.ret_taint.get(target)
                        if witness is not None:
                            changed = self._set(
                                self.call_taint, fact,
                                witness) or changed
                        changed = self._propagate_args(
                            key, function, site, resolution, target,
                            callee) or changed
                    if resolution.kind == "class" and not sanitized:
                        # Constructed objects wrap their arguments.
                        witness = self.site_arg_witness(
                            key, function, site.index)
                        if witness is not None:
                            changed = self._set(
                                self.call_taint, fact,
                                witness) or changed
                elif not sanitized:
                    # 3. external / unknown / widened: conservative
                    # argument pass-through.
                    witness = self.site_arg_witness(
                        key, function, site.index)
                    if witness is not None:
                        changed = self._set(
                            self.call_taint, fact, witness) or changed
            # 4. return taint.
            witness = self.origins_witness(key, function,
                                           function.return_origins)
            if witness is not None:
                changed = self._set(
                    self.ret_taint, key,
                    f"{witness} -> return of "
                    f"{function.qualname}") or changed
            # 5. attribute-store taint.
            if function.class_name is not None:
                class_key = node_key(summary.relpath,
                                     function.class_name)
                for row in function.attr_stores:
                    attr, origins = str(row[0]), row[1]
                    witness = self.origins_witness(key, function,
                                                   origins)
                    if witness is not None:
                        changed = self._set(
                            self.attr_taint, (class_key, attr),
                            f"{witness} -> self.{attr}") or changed
        return changed

    def _propagate_args(self, key: str, function: FunctionSummary,
                        site: CallSite, resolution: Resolution,
                        target: str,
                        callee: FunctionSummary) -> bool:
        changed = False
        offset = callee.param_offset() if resolution.bound else 0
        for position, origins in enumerate(site.arg_origins):
            witness = self.origins_witness(key, function, origins)
            if witness is None:
                continue
            index = position + offset
            if index < len(callee.params):
                changed = self._set(
                    self.param_taint, (target, index),
                    f"{witness} -> {callee.qualname}("
                    f"{callee.params[index]})") or changed
        for name in sorted(site.kw_origins):
            witness = self.origins_witness(key, function,
                                           site.kw_origins[name])
            if witness is None:
                continue
            index_opt = callee.param_index(name)
            if index_opt is not None:
                changed = self._set(
                    self.param_taint, (target, index_opt),
                    f"{witness} -> {callee.qualname}({name})") \
                    or changed
        return changed


def async_functions(context: ProjectContext) -> List[str]:
    """Node keys of every ``async def`` in the scanned tree."""
    return [key for key, _, function in context.functions()
            if function.is_async]
