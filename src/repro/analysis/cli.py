"""``python -m repro.analysis`` - the determinism/domain lint gate.

Exit codes match ``bench-diff`` / ``trace-diff``:

* ``0`` - no findings beyond the committed baseline;
* ``1`` - at least one new finding (each is printed with a fix hint);
* ``2`` - the scan itself could not run (bad path, unparsable file,
  malformed baseline, unknown rule id).

Typical invocations::

    python -m repro.analysis src                 # gate (CI default)
    python -m repro.analysis src --format json   # machine-readable
    python -m repro.analysis src --write-baseline  # freeze findings
    python -m repro.analysis --list-rules        # rule catalogue
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from .baseline import (apply_baseline, load_baseline,
                       refreeze_baseline)
from .findings import Finding
from .framework import RULES, AnalysisReport, run_analysis

#: Summary-cache file picked up (and written) by default; delete it or
#: pass ``--no-cache`` for a cold run.
DEFAULT_CACHE = ".repro-analysis-cache.json"

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Baseline file picked up automatically when present in the cwd.
DEFAULT_BASELINE = "analysis-baseline.json"


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & domain-rule static analysis for "
                    "the repro source tree.")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)")
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of frozen findings (default: "
             f"{DEFAULT_BASELINE}; silently skipped when absent)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file - report every finding")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="freeze the current findings into --baseline and exit 0")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)")
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the JSON findings report to FILE (the CI "
             "artifact)")
    parser.add_argument(
        "--cache", metavar="FILE", default=DEFAULT_CACHE,
        help=f"summary cache for the whole-program pass (default: "
             f"{DEFAULT_CACHE}; keyed on file content hashes and "
             f"rule versions)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the summary cache (cold run)")
    parser.add_argument(
        "--stats", action="store_true",
        help="print a scan-statistics line (files, cache hits, "
             "call-graph size, wall time) to stderr")
    parser.add_argument(
        "--dot", metavar="FILE",
        help="write the project call graph in Graphviz DOT form to "
             "FILE (requires at least one whole-program rule active)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in RULES.items():
        lines.append(f"{rule_id}  {cls.title}")
        lines.append(f"    why:  {cls.rationale}")
        lines.append(f"    fix:  {cls.hint}")
        if cls.allowlist:
            lines.append(f"    allowlisted: "
                         f"{', '.join(cls.allowlist)}")
    return "\n".join(lines)


def _json_report(report: AnalysisReport, new: Sequence[Finding],
                 baselined: int,
                 stale: Sequence[Any]) -> Dict[str, Any]:
    return {
        "schema": "repro.analysis-report/1",
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": baselined,
        "stale_baseline_entries": [list(fp) for fp in stale],
        "findings": [finding.to_dict() for finding in new],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return EXIT_OK
    started = time.perf_counter()  # repro: noqa DET001 -- advisory scan timing for --stats, never serialized
    try:
        report = run_analysis(
            [Path(p) for p in args.paths],
            select=_split_rule_list(args.select),
            ignore=_split_rule_list(args.ignore),
            cache_path=None if args.no_cache else args.cache)
    except ConfigurationError as error:
        print(f"analysis error: {error}", file=sys.stderr)
        return EXIT_ERROR
    elapsed = time.perf_counter() - started  # repro: noqa DET001 -- advisory scan timing for --stats, never serialized

    if args.stats:
        print(f"stats: {report.files_scanned} file(s) scanned, "
              f"{report.cache_hits} cache hit(s) / "
              f"{report.cache_misses} miss(es), call graph "
              f"{report.graph_nodes} node(s) / "
              f"{report.graph_edges} edge(s), {elapsed:.2f}s wall",
              file=sys.stderr)
    if args.dot:
        if report.context is None:
            print("analysis error: --dot needs a whole-program rule "
                  "active (none selected)", file=sys.stderr)
            return EXIT_ERROR
        Path(args.dot).write_text(report.context.graph.to_dot(),
                                  encoding="utf-8")

    if args.write_baseline:
        _, pruned = refreeze_baseline(args.baseline, report.findings)
        print(f"baseline: froze {len(report.findings)} finding(s) "
              f"into {args.baseline} ({pruned} stale entr"
              f"{'y' if pruned == 1 else 'ies'} pruned)")
        return EXIT_OK

    baselined = 0
    stale: List[Any] = []
    new = list(report.findings)
    baseline_path = Path(args.baseline)
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except ConfigurationError as error:
            print(f"analysis error: {error}", file=sys.stderr)
            return EXIT_ERROR
        new, baselined, stale = apply_baseline(report.findings,
                                               baseline)

    payload = _json_report(report, new, baselined, stale)
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.render())
        for fingerprint in stale:
            print(f"warning: stale baseline entry (fixed? run "
                  f"--write-baseline): {fingerprint}",
                  file=sys.stderr)
        summary = (f"checked {report.files_scanned} file(s): "
                   f"{len(new)} new finding(s), "
                   f"{baselined} baselined, "
                   f"{report.suppressed} noqa-suppressed")
        print(summary)
    return EXIT_FINDINGS if new else EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
