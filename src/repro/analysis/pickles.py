"""PKL001: unpicklable constructs reaching process-crossing payloads.

:class:`~repro.experiments.executor.RunSpec` descriptors cross the
``ProcessPoolExecutor`` boundary and :class:`~repro.sim.events.Event`
payloads are serialized into decision journals.  A lambda, a closure
(function defined inside another function), or a local class in either
pickles late and fails only when ``--workers N`` is actually used -
this rule fails it at lint time instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .findings import Finding
from .framework import ModuleInfo, Rule, dotted_name, register

#: Constructors whose arguments must stay picklable.
_PAYLOAD_CTORS = ("RunSpec", "Event")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _shallow(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``scope`` without entering nested function bodies.

    Nested function nodes themselves are yielded (so callers can
    recurse into them explicitly); their bodies are not.
    """
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        if node is not scope and isinstance(node, _FUNCTION_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class UnpicklablePayloadRule(Rule):
    """PKL001: lambda/closure/local class in a RunSpec/Event call."""

    rule_id = "PKL001"
    title = "unpicklable value passed into a RunSpec/Event payload"
    rationale = (
        "RunSpecs cross the process-pool boundary and Event payloads "
        "are journaled; lambdas, closures, and local classes break "
        "pickling only once --workers is raised, far from the bug.")
    hint = ("pass a module-level function or class; parameterize via "
            "functools.partial over module-level callables if needed")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree, set())

    def _check_scope(self, module: ModuleInfo, scope: ast.AST,
                     inherited: Set[str]) -> Iterator[Finding]:
        local = set(inherited)
        nested: List[ast.AST] = []
        in_function = isinstance(scope, _FUNCTION_NODES)
        for node in _shallow(scope):
            if node is scope:
                continue
            if isinstance(node, _FUNCTION_NODES):
                nested.append(node)
                if in_function:
                    local.add(node.name)
            elif isinstance(node, ast.ClassDef) and in_function:
                local.add(node.name)
        for node in _shallow(scope):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, local)
        for child in nested:
            yield from self._check_scope(module, child, local)

    def _check_call(self, module: ModuleInfo, node: ast.Call,
                    local_names: Set[str]) -> Iterator[Finding]:
        chain = dotted_name(node.func)
        if chain is None:
            return
        ctor = chain.rsplit(".", 1)[-1]
        if ctor not in _PAYLOAD_CTORS:
            return
        values: List[ast.expr] = list(node.args)
        values.extend(kw.value for kw in node.keywords)
        for value in values:
            for inner in ast.walk(value):
                if isinstance(inner, ast.Lambda):
                    yield self.finding(
                        module, inner,
                        f"lambda passed into {ctor}(...) cannot be "
                        f"pickled across the worker boundary")
                elif isinstance(inner, ast.Name) \
                        and inner.id in local_names:
                    yield self.finding(
                        module, inner,
                        f"locally-defined {inner.id!r} passed into "
                        f"{ctor}(...) cannot be pickled across the "
                        f"worker boundary")
