"""EVT001: cross-module EventKind coverage.

Every :class:`~repro.sim.events.EventKind` member must be renderable
(a glyph in ``repro/sim/timeline.py``'s ``_GLYPHS``) and checkable (its
value string appears in a kind table or dispatch literal of
``repro/telemetry/audit.py``'s :class:`InvariantMonitor`).  PR 4 grew
the enum by seven kinds and wired each into both modules by hand; this
rule makes forgetting the wiring a lint failure instead of a silently
unrendered / unaudited event kind.

The rule only fires when all three modules are inside the scanned
tree, so scanning a fixture subset or a single file never produces
spurious coverage findings.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .framework import ModuleInfo, ProjectRule, register

_EVENTS_SUFFIX = "repro/sim/events.py"
_TIMELINE_SUFFIX = "repro/sim/timeline.py"
_AUDIT_SUFFIX = "repro/telemetry/audit.py"

#: Module-level assignments in audit.py treated as kind check tables.
_KIND_TABLE_RE = re.compile(r"^_[A-Z0-9_]*KINDS$")


def _find_module(modules: Sequence[ModuleInfo],
                 suffix: str) -> Optional[ModuleInfo]:
    for module in modules:
        if module.relpath.endswith(suffix):
            return module
    return None


def _event_kind_members(module: ModuleInfo) -> Dict[str, str]:
    """``EventKind`` member name -> value string."""
    members: Dict[str, str] = {}
    for node in module.tree.body:
        if not (isinstance(node, ast.ClassDef)
                and node.name == "EventKind"):
            continue
        for statement in node.body:
            if isinstance(statement, ast.Assign) \
                    and len(statement.targets) == 1 \
                    and isinstance(statement.targets[0], ast.Name) \
                    and isinstance(statement.value, ast.Constant) \
                    and isinstance(statement.value.value, str):
                members[statement.targets[0].id] = \
                    statement.value.value
    return members


def _glyph_table(module: ModuleInfo
                 ) -> Tuple[Optional[ast.Assign], Set[str]]:
    """The ``_GLYPHS`` assignment and its ``EventKind.X`` key names."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign) \
                and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "_GLYPHS" \
                and isinstance(node.value, ast.Dict):
            names = {key.attr for key in node.value.keys
                     if isinstance(key, ast.Attribute)
                     and isinstance(key.value, ast.Name)
                     and key.value.id == "EventKind"}
            return node, names
    return None, set()


def _audit_kind_literals(module: ModuleInfo) -> Set[str]:
    """Kind strings the invariant monitor knows about.

    The union of (a) module-level ``_*KINDS`` table entries and (b)
    string literals inside the ``InvariantMonitor`` class body (its
    ``observe`` dispatch compares ``kind == "..."`` directly).
    """
    known: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) \
                and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _KIND_TABLE_RE.match(node.targets[0].id):
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Constant) \
                        and isinstance(inner.value, str):
                    known.add(inner.value)
        elif isinstance(node, ast.ClassDef) \
                and node.name == "InvariantMonitor":
            for inner in ast.walk(node):
                if isinstance(inner, ast.Constant) \
                        and isinstance(inner.value, str):
                    known.add(inner.value)
    return known


@register
class EventCoverageRule(ProjectRule):
    """EVT001: every EventKind has a glyph and an audit check."""

    rule_id = "EVT001"
    title = "EventKind member missing from _GLYPHS or the audit tables"
    rationale = (
        "PR 4 wired seven new event kinds into the timeline renderer "
        "and the invariant monitor by hand; an unwired kind renders "
        "as a crash (KeyError in strip_chart) or an unaudited "
        "decision stream.")
    hint = ("add the member to timeline._GLYPHS and cover its value "
            "in an InvariantMonitor kind table or dispatch branch")

    def check_project(self, modules: Sequence[ModuleInfo]
                      ) -> Iterator[Finding]:
        events = _find_module(modules, _EVENTS_SUFFIX)
        timeline = _find_module(modules, _TIMELINE_SUFFIX)
        audit = _find_module(modules, _AUDIT_SUFFIX)
        if events is None or timeline is None or audit is None:
            return
        members = _event_kind_members(events)
        if not members:
            return
        glyph_node, glyph_names = _glyph_table(timeline)
        audit_literals = _audit_kind_literals(audit)
        missing_glyphs: List[str] = [name for name in members
                                     if name not in glyph_names]
        anchor: ast.AST = glyph_node if glyph_node is not None \
            else timeline.tree
        for name in missing_glyphs:
            yield self.finding(
                timeline, anchor,
                f"EventKind.{name} has no glyph in _GLYPHS")
        for name, value in members.items():
            if value not in audit_literals:
                yield self.finding(
                    audit, audit.tree,
                    f"EventKind.{name} ({value!r}) appears in no "
                    f"InvariantMonitor kind table or dispatch branch")
