"""Project symbol table and call graph over the module summaries.

:class:`SymbolTable` resolves the dotted callee chains recorded by
:mod:`repro.analysis.symbols` against the whole scanned tree:
``repro.*`` imports (including re-export chasing through package
``__init__`` files), attribute calls on known module aliases, and
method calls on project classes whose receiver type is visible (a
``ClassName(...)`` constructor assignment, a parameter annotation, or a
typed ``self`` attribute).  Anything it cannot pin down is
*over-approximated*: an unresolved ``x.meth()`` is treated as possibly
calling every project method named ``meth`` (dunders excluded) - edges
the reachability rules follow but that are marked so reports can say
how confident they are.

:class:`CallGraph` is the resulting node/edge set, with one node per
project function (``"relpath::qualname"`` keys), per-call-site
resolutions for the dataflow pass, BFS reachability with parent
chains, and a deterministic Graphviz DOT export (the CI failure
artifact).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Deque, Dict, FrozenSet, Iterable, List, Optional,
                    Set, Tuple)

from .symbols import FunctionSummary, ModuleSummary


def node_key(relpath: str, qualname: str) -> str:
    """Canonical ``relpath::qualname`` node id of one function."""
    return f"{relpath}::{qualname}"


def split_node_key(key: str) -> Tuple[str, str]:
    relpath, _, qualname = key.partition("::")
    return relpath, qualname


@dataclass(frozen=True)
class Resolution:
    """What one callee chain resolves to.

    Attributes:
        kind: ``"func"`` (project functions/methods), ``"class"``
            (project class constructor - ``functions`` holds its
            ``__init__`` when defined), ``"overapprox"`` (unresolved
            method call widened to every same-named project method),
            ``"external"`` (fully-qualified non-project callee), or
            ``"unknown"``.
        functions: resolved function node keys.
        class_key: ``relpath::ClassName`` for class constructors.
        qualified: the fully-qualified name for external callees.
        bound: True when the call is receiver-bound (positional
            arguments map to parameters *after* ``self``/``cls``).
    """

    kind: str
    functions: Tuple[str, ...] = ()
    qualified: Optional[str] = None
    class_key: Optional[str] = None
    bound: bool = False


_UNKNOWN = Resolution(kind="unknown")


class SymbolTable:
    """Cross-module name resolution over all scanned summaries."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.by_module: Dict[str, ModuleSummary] = {
            summary.module: summary for summary in summaries.values()}
        #: method name -> node keys of every project method so named.
        self.method_index: Dict[str, List[str]] = {}
        #: class short name -> [(relpath, class name)].
        self.class_index: Dict[str, List[Tuple[str, str]]] = {}
        for relpath in sorted(summaries):
            summary = summaries[relpath]
            for qualname, function in sorted(
                    summary.functions.items()):
                if "." in qualname:
                    method = qualname.rsplit(".", 1)[1]
                    if not method.startswith("__"):
                        self.method_index.setdefault(method, []).append(
                            node_key(relpath, qualname))
            for name in sorted(summary.classes):
                self.class_index.setdefault(name, []).append(
                    (relpath, name))
        self._attr_types_memo: Dict[
            Tuple[str, str], Dict[str, List[Tuple[str, str]]]] = {}
        #: Re-entrancy guard: chains currently being resolved.  A
        #: self-referential type chain (``x = x.narrow(...)``) would
        #: otherwise recurse through ``_receiver_class`` forever.
        self._resolving: Set[Tuple[str, Optional[str], str]] = set()

    # -- function/class lookups ---------------------------------------
    def function(self, key: str) -> Optional[FunctionSummary]:
        relpath, qualname = split_node_key(key)
        summary = self.summaries.get(relpath)
        if summary is None:
            return None
        return summary.functions.get(qualname)

    def lookup_method(self, relpath: str, class_name: str,
                      method: str,
                      _seen: Optional[Set[Tuple[str, str]]] = None
                      ) -> Optional[str]:
        """Node key of ``class_name.method``, chasing base classes."""
        seen = _seen if _seen is not None else set()
        if (relpath, class_name) in seen:
            return None
        seen.add((relpath, class_name))
        summary = self.summaries.get(relpath)
        if summary is None:
            return None
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        qualname = f"{class_name}.{method}"
        if qualname in summary.functions:
            return node_key(relpath, qualname)
        for base_chain in cls.bases:
            base = self.resolve_class_chain(summary, None, base_chain)
            if base is not None:
                found = self.lookup_method(base[0], base[1], method,
                                           _seen=seen)
                if found is not None:
                    return found
        return None

    def class_attr_types(self, relpath: str, class_name: str
                         ) -> Dict[str, List[Tuple[str, str]]]:
        """attr name -> project classes its values may be instances of.

        Merged from every ``self.attr = ClassName(...)`` /
        annotated-parameter store across the class's methods plus the
        class body's annotated fields.
        """
        memo_key = (relpath, class_name)
        cached = self._attr_types_memo.get(memo_key)
        if cached is not None:
            return cached
        self._attr_types_memo[memo_key] = {}  # cycle guard
        out: Dict[str, List[Tuple[str, str]]] = {}
        summary = self.summaries.get(relpath)
        cls = summary.classes.get(class_name) if summary else None
        if summary is None or cls is None:
            return out
        prefix = f"{class_name}."
        for qualname in sorted(summary.functions):
            if not qualname.startswith(prefix):
                continue
            for row in summary.functions[qualname].attr_types:
                attr, chain = str(row[0]), str(row[1])
                ref = self.resolve_class_chain(summary, None, chain)
                if ref is not None and ref not in out.setdefault(
                        attr, []):
                    out[attr].append(ref)
        for attr, chains in sorted(cls.fields.items()):
            for chain in chains:
                ref = self.resolve_class_chain(summary, None, chain)
                if ref is not None and ref not in out.setdefault(
                        attr, []):
                    out[attr].append(ref)
        self._attr_types_memo[memo_key] = out
        return out

    # -- resolution ----------------------------------------------------
    def resolve_qualified(self, qualified: str,
                          _seen: Optional[Set[str]] = None
                          ) -> Resolution:
        """Resolve a fully-qualified dotted name, chasing re-exports."""
        seen = _seen if _seen is not None else set()
        if qualified in seen:
            return Resolution(kind="external", qualified=qualified)
        seen.add(qualified)
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            summary = self.by_module.get(module_name)
            if summary is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in summary.classes:
                if len(rest) == 1:
                    return self._class_resolution(summary.relpath, head)
                if len(rest) == 2:
                    found = self.lookup_method(summary.relpath, head,
                                               rest[1])
                    if found is not None:
                        return Resolution(kind="func",
                                          functions=(found,))
                return _UNKNOWN
            if head in summary.functions and len(rest) == 1:
                return Resolution(
                    kind="func",
                    functions=(node_key(summary.relpath, head),))
            if head in summary.imports:
                target = ".".join([summary.imports[head]] + rest[1:])
                return self.resolve_qualified(target, _seen=seen)
            return Resolution(kind="external", qualified=qualified)
        return Resolution(kind="external", qualified=qualified)

    def _class_resolution(self, relpath: str,
                          class_name: str) -> Resolution:
        init = self.lookup_method(relpath, class_name, "__init__")
        return Resolution(
            kind="class",
            functions=(init,) if init is not None else (),
            class_key=node_key(relpath, class_name), bound=True)

    def resolve_class_chain(self, summary: ModuleSummary,
                            function: Optional[FunctionSummary],
                            chain: str
                            ) -> Optional[Tuple[str, str]]:
        """``(relpath, class name)`` a type chain resolves to, if any."""
        resolution = self.resolve_chain(summary, function, chain)
        if resolution.kind == "class" \
                and resolution.class_key is not None:
            return split_node_key(resolution.class_key)
        return None

    def _receiver_class(self, summary: ModuleSummary,
                        function: Optional[FunctionSummary],
                        parts: List[str]
                        ) -> Optional[Tuple[str, str]]:
        """Resolve a receiver chain (all but the method) to a class."""
        head = parts[0]
        current: Optional[Tuple[str, str]] = None
        rest: List[str] = []
        if head == "self" and function is not None \
                and function.class_name is not None:
            current = (summary.relpath, function.class_name)
            rest = parts[1:]
        elif function is not None and head in function.var_types:
            for chain in function.var_types[head]:
                ref = self.resolve_class_chain(summary, function, chain)
                if ref is not None:
                    current = ref
                    break
            rest = parts[1:]
        elif function is not None and head in function.var_attrs \
                and function.class_name is not None:
            attr = function.var_attrs[head]
            refs = self.class_attr_types(summary.relpath,
                                         function.class_name)
            candidates = refs.get(attr, [])
            current = candidates[0] if candidates else None
            rest = parts[1:]
        elif function is not None:
            index = function.param_index(head)
            if index is not None:
                for chain in function.param_chains[index]:
                    ref = self.resolve_class_chain(summary, function,
                                                   chain)
                    if ref is not None:
                        current = ref
                        break
                rest = parts[1:]
            else:
                return None
        else:
            return None
        for attr in rest:
            if current is None:
                return None
            refs = self.class_attr_types(current[0], current[1])
            candidates = refs.get(attr, [])
            current = candidates[0] if candidates else None
        return current

    def resolve_chain(self, summary: ModuleSummary,
                      function: Optional[FunctionSummary],
                      chain: Optional[str]) -> Resolution:
        """Resolve a callee chain as written inside ``function``."""
        if chain is None:
            return _UNKNOWN
        guard = (summary.relpath,
                 function.qualname if function is not None else None,
                 chain)
        if guard in self._resolving:
            return _UNKNOWN
        self._resolving.add(guard)
        try:
            return self._resolve_chain(summary, function, chain)
        finally:
            self._resolving.discard(guard)

    def _resolve_chain(self, summary: ModuleSummary,
                       function: Optional[FunctionSummary],
                       chain: str) -> Resolution:
        parts = chain.split(".")
        if len(parts) == 1:
            name = parts[0]
            if name in summary.functions and "." not in name:
                return Resolution(
                    kind="func",
                    functions=(node_key(summary.relpath, name),))
            if name in summary.classes:
                return self._class_resolution(summary.relpath, name)
            if name in summary.imports:
                return self.resolve_qualified(summary.imports[name])
            return _UNKNOWN
        method = parts[-1]
        # Typed receiver (self, locals, annotated params, attributes).
        receiver = self._receiver_class(summary, function, parts[:-1])
        if receiver is not None:
            found = self.lookup_method(receiver[0], receiver[1], method)
            if found is not None:
                return Resolution(kind="func", functions=(found,),
                                  bound=True)
            return _UNKNOWN
        # Class-qualified call (``ClassName.method(...)``).
        head = parts[0]
        if head in summary.classes and len(parts) == 2:
            found = self.lookup_method(summary.relpath, head, method)
            if found is not None:
                return Resolution(kind="func", functions=(found,),
                                  bound=False)
        # Module-alias call (``alias.attr...``).
        if head in summary.imports:
            return self.resolve_qualified(
                ".".join([summary.imports[head]] + parts[1:]))
        # Unresolved method receiver: widen to all same-named methods.
        if method in self.method_index:
            return Resolution(
                kind="overapprox",
                functions=tuple(self.method_index[method]), bound=True)
        return _UNKNOWN


@dataclass
class CallGraph:
    """Nodes, edges, and per-call-site resolutions of the project."""

    nodes: List[str] = field(default_factory=list)
    #: src node key -> [(dst node key, overapprox?)], deterministic.
    edges: Dict[str, List[Tuple[str, bool]]] = field(
        default_factory=dict)
    #: (src node key, call-site index) -> resolution.
    resolutions: Dict[Tuple[str, int], Resolution] = field(
        default_factory=dict)

    @property
    def edge_count(self) -> int:
        return sum(len(out) for out in self.edges.values())

    def resolution(self, src: str, call_index: int) -> Resolution:
        return self.resolutions.get((src, call_index), _UNKNOWN)

    def reachable(self, starts: Iterable[str],
                  include_overapprox: bool = True
                  ) -> Dict[str, Optional[str]]:
        """BFS closure: reached node -> parent node (None for roots)."""
        parents: Dict[str, Optional[str]] = {}
        queue: Deque[str] = deque()
        for start in sorted(set(starts)):
            if start not in parents:
                parents[start] = None
                queue.append(start)
        while queue:
            current = queue.popleft()
            for target, overapprox in self.edges.get(current, []):
                if overapprox and not include_overapprox:
                    continue
                if target not in parents:
                    parents[target] = current
                    queue.append(target)
        return parents

    @staticmethod
    def chain_to(parents: Dict[str, Optional[str]], node: str,
                 limit: int = 8) -> List[str]:
        """Root-first call chain leading to ``node``."""
        chain: List[str] = []
        cursor: Optional[str] = node
        while cursor is not None and len(chain) <= limit:
            chain.append(cursor)
            cursor = parents.get(cursor)
        return chain[::-1]

    def to_dot(self) -> str:
        """Deterministic Graphviz DOT form (the CI failure artifact)."""
        lines = ["digraph callgraph {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=10];']
        for node in sorted(self.nodes):
            lines.append(f'  "{node}";')
        for src in sorted(self.edges):
            seen: Set[Tuple[str, bool]] = set()
            for dst, overapprox in self.edges[src]:
                if (dst, overapprox) in seen:
                    continue
                seen.add((dst, overapprox))
                style = " [style=dashed]" if overapprox else ""
                lines.append(f'  "{src}" -> "{dst}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


def build_callgraph(summaries: Dict[str, ModuleSummary],
                    table: SymbolTable) -> CallGraph:
    """Resolve every call site and assemble the project call graph."""
    graph = CallGraph()
    for relpath in sorted(summaries):
        summary = summaries[relpath]
        for qualname in sorted(summary.functions):
            graph.nodes.append(node_key(relpath, qualname))
    node_set: FrozenSet[str] = frozenset(graph.nodes)
    for relpath in sorted(summaries):
        summary = summaries[relpath]
        for qualname in sorted(summary.functions):
            src = node_key(relpath, qualname)
            function = summary.functions[qualname]
            out: List[Tuple[str, bool]] = []
            for site in function.calls:
                resolution = table.resolve_chain(summary, function,
                                                 site.chain)
                graph.resolutions[(src, site.index)] = resolution
                overapprox = resolution.kind == "overapprox"
                for target in resolution.functions:
                    if target in node_set:
                        out.append((target, overapprox))
            graph.edges[src] = out
    return graph


def pool_entry_points(summaries: Dict[str, ModuleSummary],
                      table: SymbolTable) -> List[str]:
    """Node keys of functions handed to ``pool.submit``/``pool.map``."""
    entries: List[str] = []
    for relpath in sorted(summaries):
        summary = summaries[relpath]
        for name in summary.pool_targets:
            resolution = table.resolve_chain(summary, None, name)
            for target in resolution.functions:
                if target not in entries:
                    entries.append(target)
    return entries
