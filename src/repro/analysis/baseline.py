"""Committed-baseline handling for the static-analysis pass.

A baseline freezes pre-existing findings so the pass can gate *new*
violations in CI from day one without first paying down every old one.
Entries match on ``(rule, path, snippet)`` - the stripped source line -
with multiplicity, so unrelated edits elsewhere in a file never
invalidate the baseline, while touching a baselined line (the snippet
changes) surfaces the finding again.

Baselines are written with sorted keys and a schema marker so the
committed file diffs cleanly.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..exceptions import ConfigurationError
from .findings import Finding

#: Schema identifier written into every baseline file.
BASELINE_SCHEMA = "repro.analysis-baseline/1"

Fingerprint = Tuple[str, str, str]


def save_baseline(path: Union[str, Path],
                  findings: Sequence[Finding]) -> Path:
    """Write the findings as a baseline file; returns the path."""
    counts: Counter = Counter(f.fingerprint for f in findings)
    entries = [{"rule": rule, "path": rel, "snippet": snippet,
                "count": count}
               for (rule, rel, snippet), count in sorted(counts.items())]
    target = Path(path)
    target.write_text(json.dumps(
        {"schema": BASELINE_SCHEMA, "findings": entries},
        indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target


def refreeze_baseline(path: Union[str, Path],
                      findings: Sequence[Finding]
                      ) -> Tuple[Path, int]:
    """Rewrite the baseline from current findings, pruning stale debt.

    Returns ``(path, pruned)`` where *pruned* counts the baseline
    capacity (entry multiplicity included) that no current finding
    consumes - frozen findings that have since been fixed.  A missing
    or unreadable previous baseline prunes nothing.
    """
    pruned = 0
    target = Path(path)
    if target.exists():
        previous: "Counter[Fingerprint]"
        try:
            previous = load_baseline(target)
        except ConfigurationError:
            previous = Counter()
        remaining: "Counter[Fingerprint]" = Counter(previous)
        remaining.subtract(Counter(f.fingerprint for f in findings))
        pruned = sum(count for count in remaining.values()
                     if count > 0)
    save_baseline(target, findings)
    return target, pruned


def load_baseline(path: Union[str, Path]) -> "Counter[Fingerprint]":
    """Read a baseline file into a fingerprint multiset.

    Raises:
        ConfigurationError: on unreadable/malformed baseline files.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"cannot read baseline {path}: {error}") from error
    if not isinstance(data, dict) \
            or data.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"{path}: not a {BASELINE_SCHEMA} baseline file")
    counts: "Counter[Fingerprint]" = Counter()
    for entry in data.get("findings", []):
        try:
            fingerprint = (str(entry["rule"]), str(entry["path"]),
                           str(entry["snippet"]))
            counts[fingerprint] += int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"{path}: malformed baseline entry {entry!r}: "
                f"{error}") from error
    return counts


def apply_baseline(findings: Sequence[Finding],
                   baseline: "Counter[Fingerprint]"
                   ) -> Tuple[List[Finding], int, List[Fingerprint]]:
    """Split findings into (new, matched-count, stale-entries).

    Findings matching a baseline entry are consumed greedily with
    multiplicity; leftover baseline capacity is reported as *stale*
    (the finding it froze no longer exists - the baseline should be
    regenerated with ``--write-baseline``).
    """
    remaining: "Counter[Fingerprint]" = Counter(baseline)
    new: List[Finding] = []
    matched = 0
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            matched += 1
        else:
            new.append(finding)
    stale: List[Fingerprint] = sorted(
        fp for fp, count in remaining.items() if count > 0)
    return new, matched, stale


def baseline_to_dict(baseline: "Counter[Fingerprint]"
                     ) -> Dict[str, int]:
    """Readable ``"RULE path :: snippet" -> count`` form (reports)."""
    return {f"{rule} {path} :: {snippet}": count
            for (rule, path, snippet), count in sorted(baseline.items())}
