"""Incremental result cache for the whole-program analysis pass.

The expensive per-file work - parsing aside - is summary extraction
(:func:`repro.analysis.symbols.summarize_module`).  Summaries are
*file-local by construction*, so caching them keyed on the file's
content hash is exactly sound: an edit anywhere else in the tree
cannot change this file's summary.  The cheap global stages (symbol
table, call graph, taint fixpoint) always re-run over the mixed
cached/fresh summaries, which is what keeps interprocedural findings
correct when an edit in one file changes what its callers should
report - the edited file is re-extracted, every caller's conclusions
are recomputed from the refreshed summary set.

The cache version folds in :data:`~repro.analysis.symbols.EXTRACTOR_VERSION`
plus every registered dataflow rule's ``(id, version)`` pair, so
bumping either invalidates the whole cache - the "(file content hash,
rule version)" key the CI gate relies on.  Unknown schema or version
mismatches are never errors: the cache silently starts empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from .symbols import ModuleSummary

#: Schema marker written into every cache file.
CACHE_SCHEMA = "repro.analysis-cache/1"


class SummaryCache:
    """Content-hash-keyed persistence for module summaries.

    Args:
        path: cache file location (JSON).  A missing, unreadable, or
            version-mismatched file simply starts the cache empty.
        version: invalidation token (extractor + rule versions);
            entries written under any other token are discarded.
    """

    def __init__(self, path: Union[str, Path], version: str) -> None:
        self.path = Path(path)
        self.version = version
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("schema") != CACHE_SCHEMA \
                or data.get("version") != self.version:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            for relpath, entry in entries.items():
                if isinstance(entry, dict) and "digest" in entry \
                        and "summary" in entry:
                    self._entries[str(relpath)] = entry

    def get(self, relpath: str,
            digest: str) -> Optional[ModuleSummary]:
        """The cached summary for this exact content, if any."""
        entry = self._entries.get(relpath)
        if entry is not None and entry.get("digest") == digest:
            try:
                summary = ModuleSummary.from_dict(entry["summary"])
            except (KeyError, TypeError, ValueError):
                self.misses += 1
                return None
            self.hits += 1
            return summary
        self.misses += 1
        return None

    def put(self, relpath: str, digest: str,
            summary: ModuleSummary) -> None:
        self._entries[relpath] = {"digest": digest,
                                  "summary": summary.to_dict()}

    def save(self, keep: Optional[Iterable[str]] = None) -> None:
        """Persist the cache, pruning entries for vanished files."""
        entries = self._entries
        if keep is not None:
            keep_set = set(keep)
            entries = {relpath: entry
                       for relpath, entry in entries.items()
                       if relpath in keep_set}
        payload = {"schema": CACHE_SCHEMA, "version": self.version,
                   "entries": {relpath: entries[relpath]
                               for relpath in sorted(entries)}}
        self.path.write_text(
            json.dumps(payload, indent=None, sort_keys=True,
                       separators=(",", ":")) + "\n",
            encoding="utf-8")
