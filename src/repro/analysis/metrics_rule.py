"""MET001: cross-module metric coverage for audited event kinds.

Every event kind the audit monitor models (the decision vocabulary of
the whole system) must map to at least one live metric: the
``EVENT_METRIC_MAP`` table in ``repro/telemetry/metrics.py`` declares
which metric names a kind increments, and each declared name must
actually appear as a string literal at an instrumentation site (any
scanned module *other than* metrics.py itself).  Without this rule the
event vocabulary and the metrics runtime drift apart silently: a new
EventKind ships journaled and audited but invisible on the `/metrics`
endpoint and the ops console.

Mirrors EVT001's project-rule shape: the rule only fires when
events.py, audit.py, and metrics.py are all inside the scanned tree,
so fixture subsets and single-file scans never produce spurious
coverage findings.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from .findings import Finding
from .framework import ModuleInfo, ProjectRule, register

_EVENTS_SUFFIX = "repro/sim/events.py"
_AUDIT_SUFFIX = "repro/telemetry/audit.py"
_METRICS_SUFFIX = "repro/telemetry/metrics.py"

#: Module-level assignments in audit.py treated as kind check tables
#: (same convention as EVT001).
_KIND_TABLE_RE = re.compile(r"^_[A-Z0-9_]*KINDS$")


def _find_module(modules: Sequence[ModuleInfo],
                 suffix: str) -> Optional[ModuleInfo]:
    for module in modules:
        if module.relpath.endswith(suffix):
            return module
    return None


def _event_kind_values(module: ModuleInfo) -> Set[str]:
    """Value strings of every ``EventKind`` member."""
    values: Set[str] = set()
    for node in module.tree.body:
        if not (isinstance(node, ast.ClassDef)
                and node.name == "EventKind"):
            continue
        for statement in node.body:
            if isinstance(statement, ast.Assign) \
                    and isinstance(statement.value, ast.Constant) \
                    and isinstance(statement.value.value, str):
                values.add(statement.value.value)
    return values


def _audited_kinds(module: ModuleInfo) -> Set[str]:
    """Kind strings named in audit.py's ``_*KINDS`` tables."""
    kinds: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) \
                and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _KIND_TABLE_RE.match(node.targets[0].id):
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Constant) \
                        and isinstance(inner.value, str):
                    kinds.add(inner.value)
    return kinds


def _event_metric_map(module: ModuleInfo
                      ) -> Tuple[Optional[ast.Assign],
                                 Dict[str, Tuple[str, ...]]]:
    """The ``EVENT_METRIC_MAP`` assignment and its parsed contents.

    The table is required to be a pure dict literal of string keys to
    tuples of string metric names, so it stays AST-parseable - a
    computed table would defeat the static contract.
    """
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            value = node.value
        if not (isinstance(target, ast.Name)
                and target.id == "EVENT_METRIC_MAP"
                and isinstance(value, ast.Dict)):
            continue
        table: Dict[str, Tuple[str, ...]] = {}
        for key, entry in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            names = tuple(
                inner.value for inner in ast.walk(entry)
                if isinstance(inner, ast.Constant)
                and isinstance(inner.value, str))
            table[key.value] = names
        return node, table
    return None, {}


def _string_literals(module: ModuleInfo) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, str):
            found.add(node.value)
    return found


@register
class MetricCoverageRule(ProjectRule):
    """MET001: every audited EventKind increments a registered metric."""

    rule_id = "MET001"
    title = "audited EventKind not covered by a live metric"
    rationale = (
        "The metrics runtime is the service's only *live* view; an "
        "event kind that is journaled and audited but mapped to no "
        "metric (or mapped to a metric no instrumentation site "
        "increments) is invisible to operators until the post-mortem.")
    hint = ("map the kind to >= 1 metric name in "
            "telemetry/metrics.py:EVENT_METRIC_MAP and increment that "
            "metric (inc/set_gauge/observe) at the site that emits "
            "the event")

    def check_project(self, modules: Sequence[ModuleInfo]
                      ) -> Iterator[Finding]:
        events = _find_module(modules, _EVENTS_SUFFIX)
        audit = _find_module(modules, _AUDIT_SUFFIX)
        metrics = _find_module(modules, _METRICS_SUFFIX)
        if events is None or audit is None or metrics is None:
            return
        kind_values = _event_kind_values(events)
        if not kind_values:
            return
        audited = _audited_kinds(audit) & kind_values
        map_node, table = _event_metric_map(metrics)
        anchor: ast.AST = map_node if map_node is not None \
            else metrics.tree
        if map_node is None:
            yield self.finding(
                metrics, anchor,
                "EVENT_METRIC_MAP dict literal not found in "
                "telemetry/metrics.py")
            return
        # Instrumentation sites: every scanned module except the map's
        # own (its table entries must not count as their own coverage).
        instrumented: Set[str] = set()
        for module in modules:
            if module is metrics:
                continue
            instrumented |= _string_literals(module)
        for kind in sorted(audited):
            names = table.get(kind)
            if not names:
                yield self.finding(
                    metrics, anchor,
                    f"audited event kind {kind!r} maps to no metric "
                    f"in EVENT_METRIC_MAP")
                continue
            dead = sorted(name for name in names
                          if name not in instrumented)
            for name in dead:
                yield self.finding(
                    metrics, anchor,
                    f"metric {name!r} (mapped from event kind "
                    f"{kind!r}) is incremented by no instrumentation "
                    f"site in the scanned tree")
