"""Determinism rules: DET001 wall-clock, DET002 OS-entropy RNG,
DET003 unordered iteration feeding serialized output.

These encode the determinism contract the repository keeps re-learning
dynamically: every replayed run must produce byte-identical records
(serial vs ``--workers N`` journal identity is CI-gated), which an
unseeded RNG, a wall-clock read in a canonical record, or an
unordered-container iteration order can silently break.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

from .findings import Finding
from .framework import ModuleInfo, Rule, dotted_name, register


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully-qualified origin for every import.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime
    import datetime`` maps ``datetime -> datetime.datetime``.  Imports
    are collected at every nesting level (function-local imports are
    common for optional dependencies).
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never reach stdlib clocks
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def qualified_call(imports: Dict[str, str],
                   node: ast.Call) -> Optional[str]:
    """The callee's fully-qualified dotted name, import-resolved."""
    chain = dotted_name(node.func)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    origin = imports.get(head)
    if origin is None:
        return chain
    return f"{origin}.{rest}" if rest else origin


@register
class WallClockRule(Rule):
    """DET001: wall-clock reads outside the telemetry allowlist."""

    rule_id = "DET001"
    title = "wall-clock call outside the telemetry allowlist"
    rationale = (
        "Wall-clock values leak machine-specific noise into records; "
        "PRs 2-4 each had to scrub clock fields out of serialized "
        "output to keep run replays byte-identical.")
    hint = ("route timing through repro.telemetry (tracer/ledger own "
            "provenance clocks); a justified advisory measurement "
            "needs '# repro: noqa DET001 -- why'")
    # service/http.py and service/console.py are the *exposition
    # layer*: scrape timestamps and poll pacing are wall-clock by
    # meaning, and nothing in either module can reach journals,
    # checkpoints, or records (docs/ANALYSIS.md, "DET001 and the
    # exposition layer").
    allowlist = ("repro/telemetry/ledger.py",
                 "repro/telemetry/tracer.py",
                 "repro/telemetry/progress.py",
                 "repro/service/http.py",
                 "repro/service/console.py")

    _BANNED: Set[str] = {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = qualified_call(imports, node)
            if qualified in self._BANNED:
                yield self.finding(
                    module, node,
                    f"wall-clock call {qualified}() in "
                    f"non-allowlisted module")


#: numpy.random constructors that are deterministic *when seeded*.
_SEEDABLE_CTORS = {"default_rng", "Generator", "SeedSequence",
                   "PCG64", "Philox", "SFC64", "MT19937",
                   "BitGenerator"}


@register
class GlobalRngRule(Rule):
    """DET002: global/OS-entropy RNG outside ``repro/rng.py``."""

    rule_id = "DET002"
    title = "global or OS-entropy RNG outside repro.rng"
    rationale = (
        "PR 1's Figs. 4-6 bug: DynamicRR seeded from OS entropy, so "
        "no two sweeps matched.  All randomness must come from seeded "
        "repro.rng.RngForks streams.")
    hint = ("draw from a seeded numpy Generator obtained via "
            "repro.rng (ensure_rng / RngForks.child)")
    allowlist = ("repro/rng.py",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = qualified_call(imports, node)
            if qualified is None:
                continue
            if qualified.startswith("random.") or qualified == "random":
                yield self.finding(
                    module, node,
                    f"stdlib global RNG call {qualified}()")
                continue
            if not qualified.startswith("numpy.random."):
                continue
            leaf = qualified.rsplit(".", 1)[1]
            if leaf in _SEEDABLE_CTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        f"{qualified}() without a seed draws from OS "
                        f"entropy")
            else:
                yield self.finding(
                    module, node,
                    f"legacy numpy global-state RNG call "
                    f"{qualified}()")


_SERIAL_CONTEXT = re.compile(
    r"to_record|to_dict|to_json|serial|export|dump|emit|journal|"
    r"record|canonical|write|merge", re.IGNORECASE)


def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """Describe why iterating ``node`` is order-unstable, or None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set expression"
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if chain in ("set", "frozenset"):
            return f"a {chain}(...) call"
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "keys":
            return "dict .keys() (insertion-history order)"
    return None


@register
class UnorderedSerializationRule(Rule):
    """DET003: unordered iteration in a serialization context."""

    rule_id = "DET003"
    title = "unsorted set/dict-keys iteration feeding serialized output"
    rationale = (
        "Set iteration order varies with hash seeding and insertion "
        "history; journals, records, and exports must be canonical so "
        "trace-diff/bench-diff compare runs byte for byte.")
    hint = "wrap the iterable in sorted(...) to fix the emission order"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        in_telemetry = "telemetry/" in module.relpath
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            if not in_telemetry \
                    and not _SERIAL_CONTEXT.search(scope.name):
                continue
            for finding in self._check_scope(module, scope):
                yield finding

    def _check_scope(self, module: ModuleInfo,
                     scope: ast.AST) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(scope):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                why = _is_unordered_iterable(candidate)
                key = (getattr(candidate, "lineno", 0),
                       getattr(candidate, "col_offset", 0))
                if why is not None and key not in seen:
                    seen.add(key)
                    yield self.finding(
                        module, candidate,
                        f"iterating {why} in serialization context "
                        f"without sorted(...)")
