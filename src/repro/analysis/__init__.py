"""Static enforcement of the project's determinism & domain rules.

Four PRs fought the same bug class at *runtime* - OS-entropy seeding,
wall-clock leakage into serialized records, unordered emission breaking
serial-vs-parallel byte identity.  This package turns those hard-won
contracts into named AST checks that fail in CI before the code runs:

=========  ==========================================================
rule       enforces
=========  ==========================================================
DET001     no wall-clock calls outside the telemetry allowlist
DET002     no global/OS-entropy RNG outside ``repro.rng``
DET003     no unsorted set/dict-keys iteration feeding serialization
NUM001     no float ``==``/``!=`` on reward/capacity/rate expressions
UNIT001    ``*_mhz``/``*_mbps`` only mix via ``repro.units``
PKL001     no lambdas/closures/local classes in RunSpec/Event payloads
EVT001     every EventKind has a timeline glyph and an audit check
MET001     every audited EventKind increments a registered metric
DET010     no wall-clock/entropy *value* reaching a serialization
           sink through any call chain (whole-program taint)
CONC001    no module-level global written from worker-reachable code
CONC002    no blocking call reachable from ``async def``
PKL010     no unpicklable type in a RunSpec/ServiceCheckpoint closure
UNIT010    unit families tracked through calls and returns
=========  ==========================================================

Run it with ``python -m repro.analysis src`` (exit 0 clean / 1 new
findings / 2 unusable input, matching ``bench-diff``/``trace-diff``).
Suppress a justified finding in place with ``# repro: noqa RULE --
why``; freeze pre-existing debt with ``--write-baseline``.  See
``docs/ANALYSIS.md`` for the full catalogue.
"""

from __future__ import annotations

# Importing the rule modules populates the registry.
from . import determinism as _determinism  # noqa: F401
from . import events_rule as _events_rule  # noqa: F401
from . import interprocedural as _interprocedural  # noqa: F401
from . import metrics_rule as _metrics_rule  # noqa: F401
from . import numerics as _numerics  # noqa: F401
from . import pickles as _pickles  # noqa: F401
from .baseline import (apply_baseline, load_baseline,
                       refreeze_baseline, save_baseline)
from .cache import SummaryCache
from .cli import main
from .dataflow import ProjectContext, TaintAnalysis, build_context
from .findings import Finding, sort_findings
from .framework import (RULES, AnalysisReport, DataflowRule,
                        ModuleInfo, ProjectRule, Rule, analyze_source,
                        cache_version, module_from_source, register,
                        run_analysis)

__all__ = [
    "AnalysisReport",
    "DataflowRule",
    "Finding",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "Rule",
    "SummaryCache",
    "TaintAnalysis",
    "analyze_source",
    "apply_baseline",
    "build_context",
    "cache_version",
    "load_baseline",
    "main",
    "module_from_source",
    "refreeze_baseline",
    "register",
    "run_analysis",
    "save_baseline",
    "sort_findings",
]
