"""Dual prices (shadow values) of LP constraints.

The slot-indexed LP's dual variables answer the provider's planning
questions directly: the dual of a station's capacity row is the
marginal expected reward of one more unit of expected rate at that
station; a zero dual means the station is not the bottleneck.

Duals come from the HiGHS backend (``linprog``'s ``marginals``); the
sign convention is normalized so that **a positive dual on a binding
``<=`` row means relaxing that row increases the (maximized)
objective**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
from scipy import optimize

from ..exceptions import InfeasibleProblemError, SolverError, \
    UnboundedProblemError
from .model import LinearProgram


@dataclass(frozen=True)
class DualSolution:
    """LP optimum plus per-constraint dual prices.

    Attributes:
        objective: primal optimum (natural direction).
        duals: constraint name -> dual price (>= 0 for binding ``<=``
            rows of a maximization).
        slacks: constraint name -> primal slack (0 for binding rows).
    """

    objective: float
    duals: Dict[str, float]
    slacks: Dict[str, float]

    def binding(self, tol: float = 1e-7) -> List[str]:
        """Names of constraints with (near-)zero slack."""
        return [name for name, slack in self.slacks.items()
                if abs(slack) <= tol]

    def shadow_price(self, name: str) -> float:
        """Dual price of one constraint (0.0 when absent)."""
        return self.duals.get(name, 0.0)


def solve_lp_with_duals(lp: LinearProgram) -> DualSolution:
    """Solve the LP with HiGHS and extract normalized duals.

    Only inequality/equality *rows* get duals here (variable bound
    duals are not exposed); rows keep their model names.

    Raises:
        InfeasibleProblemError / UnboundedProblemError / SolverError:
            per the usual status mapping.
    """
    c = lp.objective_vector()
    if lp.maximize:
        c = -c
    a_ub, b_ub, a_eq, b_eq = lp.sparse_rows()
    bounds = lp.uniform_bounds()
    if bounds is None:
        bounds = lp.bounds()
    result = optimize.linprog(
        c,
        A_ub=a_ub if a_ub.shape[0] else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.shape[0] else None,
        b_eq=b_eq if b_eq.shape[0] else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        if result.status == 2:
            raise InfeasibleProblemError(f"{lp.name}: {result.message}")
        if result.status == 3:
            raise UnboundedProblemError(f"{lp.name}: {result.message}")
        raise SolverError(f"{lp.name}: status {result.status}: "
                          f"{result.message}")

    # Re-associate rows with constraint names in model order.  The
    # export emits <= rows (>= rows negated) first, then == rows,
    # preserving insertion order within each group.
    ub_names = [con.name for con in lp.constraints
                if con.sense in ("<=", ">=")]
    eq_names = [con.name for con in lp.constraints if con.sense == "=="]
    duals: Dict[str, float] = {}
    slacks: Dict[str, float] = {}
    sign = -1.0 if lp.maximize else 1.0
    if a_ub.size:
        marginals = np.asarray(result.ineqlin.marginals)
        residuals = np.asarray(result.ineqlin.residual)
        for name, marginal, residual in zip(ub_names, marginals,
                                            residuals):
            duals[name] = float(sign * marginal)
            slacks[name] = float(residual)
    if a_eq.size:
        marginals = np.asarray(result.eqlin.marginals)
        residuals = np.asarray(result.eqlin.residual)
        for name, marginal, residual in zip(eq_names, marginals,
                                            residuals):
            duals[name] = float(sign * marginal)
            slacks[name] = float(residual)

    values = dict(zip(lp.variable_names(), result.x.tolist()))
    return DualSolution(objective=lp.evaluate_objective(values),
                        duals=duals, slacks=slacks)
