"""Linear/integer programming substrate.

The paper's exact solution is an ILP (**ILP-RM**) and its approximation
algorithm rounds an LP relaxation (**LP** / **LP-PT**).  This subpackage
provides everything needed to solve them:

* :class:`~repro.solver.model.LinearProgram` - a solver-agnostic model
  container (named variables, linear constraints, bounds, integrality),
* :mod:`~repro.solver.simplex` - a from-scratch two-phase dense simplex
  (Bland's rule, bounded variables via substitution rows),
* :mod:`~repro.solver.branch_and_bound` - a from-scratch best-first
  branch-and-bound ILP solver on top of any LP backend,
* :mod:`~repro.solver.scipy_backend` - adapters to scipy's HiGHS
  ``linprog`` / ``milp`` for large instances,
* :func:`~repro.solver.interface.solve_lp` /
  :func:`~repro.solver.interface.solve_ilp` - the dispatch layer.

The two LP backends are cross-validated against each other in the test
suite; experiments default to HiGHS for speed while the from-scratch
solver documents the algorithmic substance.
"""

from .model import Constraint, LinearProgram, Variable
from .interface import Solution, SolveStatus, solve_ilp, solve_lp
from .presolve import presolve, solve_with_presolve
from .duals import DualSolution, solve_lp_with_duals

__all__ = [
    "LinearProgram",
    "Variable",
    "Constraint",
    "Solution",
    "SolveStatus",
    "solve_lp",
    "solve_ilp",
    "presolve",
    "solve_with_presolve",
    "DualSolution",
    "solve_lp_with_duals",
]
