"""From-scratch two-phase dense simplex solver.

This is the reference LP backend of the library: a classical primal
simplex on the full tableau with Bland's anti-cycling rule.  It exists
so the reproduction does not silently depend on a black-box solver -
the test suite cross-validates it against scipy's HiGHS backend on
randomly generated programs and on the paper's actual LP relaxations.

Model transformations performed here:

* variables with a finite lower bound are shifted to zero,
* free variables are split into positive and negative parts,
* finite upper bounds become explicit ``<=`` rows,
* ``<=`` rows gain slacks, ``>=`` rows gain surpluses, and rows that
  lack a usable basic column gain artificials,
* phase 1 minimizes the artificial sum; phase 2 optimizes the real
  objective.

Complexity is O(rows x cols) per pivot on dense numpy arrays - entirely
adequate for the small/medium instances where exactness is cross-checked
(the experiment driver uses the HiGHS backend for the big sweeps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import (InfeasibleProblemError, SolverError,
                          UnboundedProblemError)
from .model import LinearProgram

_TOL = 1e-9


@dataclass
class _StandardForm:
    """Equality-form program ``min c.x  s.t.  A x = b, x >= 0``."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    #: map original variable index -> (column of positive part,
    #: column of negative part or None, lower-bound shift)
    recover: List[Tuple[int, Optional[int], float]]
    num_structural: int


def _to_standard_form(lp: LinearProgram) -> _StandardForm:
    """Lower the natural-form model into equality standard form."""
    columns: List[Tuple[int, Optional[int], float]] = []
    col = 0
    extra_upper_rows: List[Tuple[int, float]] = []  # (pos column, ub)
    for var in lp.variables:
        low, high = var.low, var.high
        if math.isinf(low) and low < 0:
            pos, neg = col, col + 1
            col += 2
            columns.append((pos, neg, 0.0))
            if not math.isinf(high):
                extra_upper_rows.append((pos, high))  # x+ - x- <= high
        else:
            pos = col
            col += 1
            columns.append((pos, None, low))
            if not math.isinf(high):
                extra_upper_rows.append((pos, high - low))
    num_structural = col

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    senses: List[str] = []
    for con in lp.constraints:
        row = np.zeros(num_structural)
        shift = 0.0
        for idx, coef in con.coeffs.items():
            pos, neg, low = columns[idx]
            row[pos] += coef
            if neg is not None:
                row[neg] -= coef
            shift += coef * low
        rows.append(row)
        rhs.append(con.rhs - shift)
        senses.append(con.sense)
    for pos, ub in extra_upper_rows:
        row = np.zeros(num_structural)
        sub = None
        for var_idx, (p, neg, _low) in enumerate(columns):
            if p == pos:
                sub = (p, neg)
                break
        assert sub is not None
        row[sub[0]] = 1.0
        if sub[1] is not None:
            row[sub[1]] = -1.0
        rows.append(row)
        rhs.append(ub)
        senses.append("<=")

    m = len(rows)
    num_slack = sum(1 for s in senses if s in ("<=", ">="))
    n_total = num_structural + num_slack
    a = np.zeros((m, n_total))
    b = np.zeros(m)
    slack_col = num_structural
    for i, (row, r, sense) in enumerate(zip(rows, rhs, senses)):
        a[i, :num_structural] = row
        b[i] = r
        if sense == "<=":
            a[i, slack_col] = 1.0
            slack_col += 1
        elif sense == ">=":
            a[i, slack_col] = -1.0
            slack_col += 1
    # Normalize to b >= 0.
    for i in range(m):
        if b[i] < 0:
            a[i, :] *= -1.0
            b[i] *= -1.0

    c = np.zeros(n_total)
    sign = -1.0 if lp.maximize else 1.0  # simplex minimizes
    for var in lp.variables:
        pos, neg, _low = columns[var.index]
        c[pos] += sign * var.objective
        if neg is not None:
            c[neg] -= sign * var.objective
    return _StandardForm(a=a, b=b, c=c, recover=columns,
                         num_structural=num_structural)


def _pivot(tableau: np.ndarray, basis: List[int], row: int,
           col: int) -> None:
    """Pivot the tableau on (row, col) in place."""
    tableau[row, :] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _TOL:
            tableau[i, :] -= tableau[i, col] * tableau[row, :]
    basis[row] = col


def _run_simplex(tableau: np.ndarray, basis: List[int],
                 num_cols: int, max_iter: int) -> None:
    """Optimize the tableau in place (objective in the last row).

    Uses Bland's rule: entering variable is the lowest-index column
    with a negative reduced cost; leaving row is the lowest-index
    minimum-ratio row.  Raises on unboundedness or iteration overrun.
    """
    m = tableau.shape[0] - 1
    for _ in range(max_iter):
        reduced = tableau[-1, :num_cols]
        enter = -1
        for j in range(num_cols):
            if reduced[j] < -_TOL:
                enter = j
                break
        if enter < 0:
            return
        ratios: List[Tuple[float, int, int]] = []
        for i in range(m):
            coef = tableau[i, enter]
            if coef > _TOL:
                ratios.append((tableau[i, -1] / coef, basis[i], i))
        if not ratios:
            raise UnboundedProblemError(
                "LP is unbounded in the optimization direction")
        _, _, leave = min(ratios)
        _pivot(tableau, basis, leave, enter)
    raise SolverError(f"simplex exceeded {max_iter} iterations")


def solve_with_simplex(lp: LinearProgram,
                       max_iter: int = 100_000) -> Tuple[float,
                                                         Dict[str, float]]:
    """Solve a (continuous) LP with the from-scratch simplex.

    Integrality flags are ignored (this is the relaxation solver that
    branch-and-bound builds on).

    Args:
        lp: the model.
        max_iter: pivot budget shared by both phases.

    Returns:
        ``(objective, values)`` in the model's natural direction.

    Raises:
        InfeasibleProblemError: no feasible point exists.
        UnboundedProblemError: the objective is unbounded.
        SolverError: iteration budget exhausted.
    """
    form = _to_standard_form(lp)
    a, b, c = form.a, form.b, form.c
    m, n = a.shape

    if m == 0:
        # No constraints: each variable sits at its best finite bound.
        values: Dict[str, float] = {}
        objective = 0.0
        for var in lp.variables:
            coef = var.objective if lp.maximize else -var.objective
            if coef > 0:
                best = var.high
            elif coef < 0:
                best = var.low
            else:
                best = var.low if not math.isinf(var.low) else 0.0
            if math.isinf(best):
                raise UnboundedProblemError(
                    f"variable {var.name} unbounded with nonzero objective")
            values[var.name] = best
            objective += var.objective * best
        return objective, values

    # ---------------- Phase 1 ----------------
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n:n + m] = np.eye(m)
    tableau[:m, -1] = b
    basis = list(range(n, n + m))
    # Phase-1 objective: minimize the artificial sum.
    tableau[-1, :n] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    _run_simplex(tableau, basis, num_cols=n + m, max_iter=max_iter)
    if tableau[-1, -1] < -1e-7:
        raise InfeasibleProblemError(
            f"{lp.name}: phase-1 optimum {-tableau[-1, -1]:.3e} > 0")

    # Drive remaining artificials out of the basis where possible.
    for i in range(m):
        if basis[i] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[i, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, i, pivot_col)

    # ---------------- Phase 2 ----------------
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[:m, :n]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :n] = c
    # Price out the basic columns.
    for i, bj in enumerate(basis):
        if bj < n and abs(tableau2[-1, bj]) > _TOL:
            tableau2[-1, :] -= tableau2[-1, bj] * tableau2[i, :]
    _run_simplex(tableau2, basis, num_cols=n, max_iter=max_iter)

    solution = np.zeros(n)
    for i, bj in enumerate(basis):
        if bj < n:
            solution[bj] = tableau2[i, -1]

    values = {}
    for var in lp.variables:
        pos, neg, low = form.recover[var.index]
        val = solution[pos] + low
        if neg is not None:
            val -= solution[neg]
        values[var.name] = float(val)
    objective = lp.evaluate_objective(values)
    return objective, values
