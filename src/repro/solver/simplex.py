"""From-scratch two-phase dense simplex solver.

This is the reference LP backend of the library: a classical primal
simplex on the full tableau with Bland's anti-cycling rule.  It exists
so the reproduction does not silently depend on a black-box solver -
the test suite cross-validates it against scipy's HiGHS backend on
randomly generated programs and on the paper's actual LP relaxations.

Model transformations performed here:

* variables with a finite lower bound are shifted to zero,
* free variables are split into positive and negative parts,
* finite upper bounds become explicit ``<=`` rows,
* ``<=`` rows gain slacks, ``>=`` rows gain surpluses, and rows that
  lack a usable basic column gain artificials,
* phase 1 minimizes the artificial sum; phase 2 optimizes the real
  objective.

Redundant rows (linearly dependent constraints) leave an artificial
basic at zero after phase 1; such rows are **dropped** before phase 2 -
keeping them is unsound because their basic column no longer exists in
the phase-2 tableau, so a later ratio test could pick the row and pivot
on a near-zero entry.

Pricing, the ratio test, and the pivot update are vectorized numpy
expressions that reproduce the classical per-element loops *exactly*
(same entering column - lowest index with negative reduced cost; same
leaving row - minimum ratio with ties broken by lowest basis index;
same multiply-then-subtract per tableau entry), so the pivot sequence
is identical to the textbook implementation's.

Warm starts: :func:`solve_with_simplex_state` returns the optimal basis
(column indices of the internal standard form) and accepts one from a
previous solve.  A valid, primal-feasible warm basis skips phase 1
entirely - the tableau is refactorized from the basis columns and
phase 2 resumes from there.  The refactorization goes through a dense
linear solve, so warm-started results agree with cold ones to solver
tolerance (not bitwise); callers needing bit-reproducibility solve
cold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import (InfeasibleProblemError, SolverError,
                          UnboundedProblemError)
from ..telemetry.metrics import get_metrics
from .model import LinearProgram

_TOL = 1e-9


@dataclass
class _StandardForm:
    """Equality-form program ``min c.x  s.t.  A x = b, x >= 0``."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    #: map original variable index -> (column of positive part,
    #: column of negative part or None, lower-bound shift)
    recover: List[Tuple[int, Optional[int], float]]
    num_structural: int


def _to_standard_form(lp: LinearProgram) -> _StandardForm:
    """Lower the natural-form model into equality standard form."""
    columns: List[Tuple[int, Optional[int], float]] = []
    col = 0
    # (pos column, neg column or None, ub) per finite upper bound - the
    # column pair is recorded here directly instead of recovered later
    # by scanning `columns` (which made the lowering quadratic in the
    # number of bounded variables).
    extra_upper_rows: List[Tuple[int, Optional[int], float]] = []
    for var in lp.variables:
        low, high = var.low, var.high
        if math.isinf(low) and low < 0:
            pos, neg = col, col + 1
            col += 2
            columns.append((pos, neg, 0.0))
            if not math.isinf(high):
                extra_upper_rows.append((pos, neg, high))  # x+ - x- <= high
        else:
            pos = col
            col += 1
            columns.append((pos, None, low))
            if not math.isinf(high):
                extra_upper_rows.append((pos, None, high - low))
    num_structural = col

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    senses: List[str] = []
    for con in lp.constraints:
        row = np.zeros(num_structural)
        shift = 0.0
        for idx, coef in con.coeffs.items():
            pos, neg, low = columns[idx]
            row[pos] += coef
            if neg is not None:
                row[neg] -= coef
            shift += coef * low
        rows.append(row)
        rhs.append(con.rhs - shift)
        senses.append(con.sense)
    for pos, neg, ub in extra_upper_rows:
        row = np.zeros(num_structural)
        row[pos] = 1.0
        if neg is not None:
            row[neg] = -1.0
        rows.append(row)
        rhs.append(ub)
        senses.append("<=")

    m = len(rows)
    num_slack = sum(1 for s in senses if s in ("<=", ">="))
    n_total = num_structural + num_slack
    a = np.zeros((m, n_total))
    b = np.zeros(m)
    slack_col = num_structural
    for i, (row, r, sense) in enumerate(zip(rows, rhs, senses)):
        a[i, :num_structural] = row
        b[i] = r
        if sense == "<=":
            a[i, slack_col] = 1.0
            slack_col += 1
        elif sense == ">=":
            a[i, slack_col] = -1.0
            slack_col += 1
    # Normalize to b >= 0.
    for i in range(m):
        if b[i] < 0:
            a[i, :] *= -1.0
            b[i] *= -1.0

    c = np.zeros(n_total)
    sign = -1.0 if lp.maximize else 1.0  # simplex minimizes
    for var in lp.variables:
        pos, neg, _low = columns[var.index]
        c[pos] += sign * var.objective
        if neg is not None:
            c[neg] -= sign * var.objective
    return _StandardForm(a=a, b=b, c=c, recover=columns,
                         num_structural=num_structural)


def _pivot(tableau: np.ndarray, basis: List[int], row: int,
           col: int) -> None:
    """Pivot the tableau on (row, col) in place.

    Vectorized form of the classical per-row elimination; each entry
    sees the same multiply-then-subtract as the scalar loop, so the
    result is bit-identical.
    """
    tableau[row, :] /= tableau[row, col]
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    mask = np.abs(factors) > _TOL
    if mask.any():
        tableau[mask, :] -= factors[mask, None] * tableau[row, :]
    basis[row] = col


def _run_simplex(tableau: np.ndarray, basis: List[int],
                 num_cols: int, max_iter: int) -> int:
    """Optimize the tableau in place (objective in the last row).

    Uses Bland's rule: entering variable is the lowest-index column
    with a negative reduced cost; leaving row is the lowest-index
    minimum-ratio row.  Raises on unboundedness or iteration overrun.

    The column/row scans are numpy reductions with the same
    deterministic tie-breaks as the classical loops (lowest column
    index; then lowest basis index among exact minimum-ratio ties), so
    the pivot sequence is unchanged.

    Returns:
        Pivots performed before reaching optimality.
    """
    m = tableau.shape[0] - 1
    rhs_col = tableau.shape[1] - 1
    for pivots in range(max_iter):
        negative = np.flatnonzero(tableau[-1, :num_cols] < -_TOL)
        if negative.size == 0:
            return pivots
        enter = int(negative[0])
        coefs = tableau[:m, enter]
        eligible = coefs > _TOL
        if not eligible.any():
            raise UnboundedProblemError(
                "LP is unbounded in the optimization direction")
        ratios = np.full(m, np.inf)
        np.divide(tableau[:m, rhs_col], coefs, out=ratios,
                  where=eligible)
        best = ratios.min()
        ties = np.flatnonzero(ratios == best)
        leave = int(min(ties, key=lambda i: (basis[i], i)))
        _pivot(tableau, basis, leave, enter)
    raise SolverError(f"simplex exceeded {max_iter} iterations")


def _phase2_from_basis(form: _StandardForm,
                       basis: Sequence[int]) -> Optional[np.ndarray]:
    """Refactorize a phase-2 tableau from a (warm) basis.

    Returns None when the basis is structurally invalid for this form
    (wrong size, out of range, duplicated), singular, or not primal
    feasible - callers then fall back to the cold two-phase path.
    """
    a, b = form.a, form.b
    m, n = a.shape
    if len(basis) != m or len(set(basis)) != m:
        return None
    cols = np.asarray(basis, dtype=int)
    if cols.size and (cols.min() < 0 or cols.max() >= n):
        return None
    try:
        body = np.linalg.solve(a[:, cols],
                               np.concatenate([a, b[:, None]], axis=1))
    except np.linalg.LinAlgError:
        return None
    rhs = body[:, -1]
    if rhs.min() < -1e-7:
        return None  # basis not primal feasible for the new rhs
    tableau = np.zeros((m + 1, n + 1))
    tableau[:m, :] = body
    tableau[:m, -1] = np.maximum(rhs, 0.0)
    tableau[-1, :n] = form.c
    return tableau


def _recover_solution(lp: LinearProgram, form: _StandardForm,
                      tableau: np.ndarray, basis: Sequence[int]
                      ) -> Tuple[float, Dict[str, float]]:
    n = form.a.shape[1]
    solution = np.zeros(n)
    for i, bj in enumerate(basis):
        if bj < n:
            solution[bj] = tableau[i, -1]
    values = {}
    for var in lp.variables:
        pos, neg, low = form.recover[var.index]
        val = solution[pos] + low
        if neg is not None:
            val -= solution[neg]
        values[var.name] = float(val)
    return lp.evaluate_objective(values), values


def solve_with_simplex_state(lp: LinearProgram,
                             max_iter: int = 100_000,
                             warm_basis: Optional[Sequence[int]] = None
                             ) -> Tuple[float, Dict[str, float],
                                        List[int], bool]:
    """Solve a (continuous) LP, optionally warm-started from a basis.

    Integrality flags are ignored (this is the relaxation solver that
    branch-and-bound builds on).

    Args:
        lp: the model.
        max_iter: pivot budget shared by both phases.
        warm_basis: standard-form basis columns from a previous
            :func:`solve_with_simplex_state` on a structurally similar
            model.  When it is valid and primal feasible for this
            model, phase 1 is skipped; otherwise the cold path runs.

    Returns:
        ``(objective, values, basis, warm_used)`` - the optimum in the
        model's natural direction, the optimal standard-form basis
        (reusable as ``warm_basis``), and whether the warm basis was
        actually applied.

    Raises:
        InfeasibleProblemError: no feasible point exists.
        UnboundedProblemError: the objective is unbounded.
        SolverError: iteration budget exhausted.
    """
    form = _to_standard_form(lp)
    a, b, c = form.a, form.b, form.c
    m, n = a.shape

    if m == 0:
        # No constraints: each variable sits at its best finite bound.
        values: Dict[str, float] = {}
        objective = 0.0
        for var in lp.variables:
            coef = var.objective if lp.maximize else -var.objective
            if coef > 0:
                best = var.high
            elif coef < 0:
                best = var.low
            else:
                best = var.low if not math.isinf(var.low) else 0.0
            if math.isinf(best):
                raise UnboundedProblemError(
                    f"variable {var.name} unbounded with nonzero objective")
            values[var.name] = best
            objective += var.objective * best
        return objective, values, [], False

    # ---------------- Warm path ----------------
    if warm_basis is not None:
        tableau2 = _phase2_from_basis(form, warm_basis)
        if tableau2 is not None:
            basis = list(warm_basis)
            # Price out the basic columns.
            for i, bj in enumerate(basis):
                if abs(tableau2[-1, bj]) > _TOL:
                    tableau2[-1, :] -= tableau2[-1, bj] * tableau2[i, :]
            pivots = _run_simplex(tableau2, basis, num_cols=n,
                                  max_iter=max_iter)
            get_metrics().inc("simplex_iterations_total", pivots,
                              phase="warm")
            objective, values = _recover_solution(lp, form, tableau2,
                                                  basis)
            return objective, values, list(basis), True

    # ---------------- Phase 1 ----------------
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n:n + m] = np.eye(m)
    tableau[:m, -1] = b
    basis = list(range(n, n + m))
    # Phase-1 objective: minimize the artificial sum.
    tableau[-1, :n] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    pivots = _run_simplex(tableau, basis, num_cols=n + m,
                          max_iter=max_iter)
    if tableau[-1, -1] < -1e-7:
        raise InfeasibleProblemError(
            f"{lp.name}: phase-1 optimum {-tableau[-1, -1]:.3e} > 0")

    # Drive remaining artificials out of the basis where possible.
    for i in range(m):
        if basis[i] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[i, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, i, pivot_col)

    # Rows whose artificial is *still* basic are redundant (linearly
    # dependent, with zero residual rhs after phase 1).  They must not
    # survive into phase 2: their basic column does not exist there, so
    # a later ratio test could select the row and pivot on a
    # numerically-zero entry.  Dropping a redundant equality never
    # changes the feasible region.
    keep = [i for i in range(m) if basis[i] < n]
    if len(keep) < m:
        basis = [basis[i] for i in keep]
        m = len(keep)
    else:
        keep = list(range(m))

    # ---------------- Phase 2 ----------------
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[keep, :n]
    tableau2[:m, -1] = tableau[keep, -1]
    tableau2[-1, :n] = c
    # Price out the basic columns.
    for i, bj in enumerate(basis):
        if bj < n and abs(tableau2[-1, bj]) > _TOL:
            tableau2[-1, :] -= tableau2[-1, bj] * tableau2[i, :]
    pivots += _run_simplex(tableau2, basis, num_cols=n,
                           max_iter=max_iter)
    get_metrics().inc("simplex_iterations_total", pivots, phase="cold")

    objective, values = _recover_solution(lp, form, tableau2, basis)
    return objective, values, list(basis), False


def solve_with_simplex(lp: LinearProgram,
                       max_iter: int = 100_000) -> Tuple[float,
                                                         Dict[str, float]]:
    """Solve a (continuous) LP with the from-scratch simplex.

    Thin cold-start wrapper around :func:`solve_with_simplex_state`.

    Returns:
        ``(objective, values)`` in the model's natural direction.

    Raises:
        InfeasibleProblemError: no feasible point exists.
        UnboundedProblemError: the objective is unbounded.
        SolverError: iteration budget exhausted.
    """
    objective, values, _basis, _warm = solve_with_simplex_state(
        lp, max_iter=max_iter)
    return objective, values
