"""scipy (HiGHS) adapters for the LP/ILP model container.

The experiments solve LPs with thousands of variables (|R| x |BS| x L);
HiGHS handles those in milliseconds, while the from-scratch simplex is
kept for validation and pedagogy.  Both backends consume the exact same
:class:`~repro.solver.model.LinearProgram` export.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy import optimize

from ..exceptions import (InfeasibleProblemError, SolverError,
                          UnboundedProblemError)
from .model import LinearProgram


def _raise_for_status(lp: LinearProgram, status: int, message: str) -> None:
    """Map scipy status codes onto the library's exceptions."""
    if status == 2:
        raise InfeasibleProblemError(f"{lp.name}: {message}")
    if status == 3:
        raise UnboundedProblemError(f"{lp.name}: {message}")
    raise SolverError(f"{lp.name}: solver failed with status {status}: "
                      f"{message}")


def solve_lp_scipy(lp: LinearProgram) -> Tuple[float, Dict[str, float]]:
    """Solve the continuous relaxation with ``scipy.optimize.linprog``.

    Integrality flags are ignored.

    Returns:
        ``(objective, values)`` in the model's natural direction.
    """
    c = lp.objective_vector()
    if lp.maximize:
        c = -c
    a_ub, b_ub, a_eq, b_eq = lp.sparse_rows()
    # One shared (low, high) pair solves identically to the expanded
    # per-variable list but skips scipy's O(n) bounds parsing.
    bounds = lp.uniform_bounds()
    if bounds is None:
        bounds = lp.bounds()
    result = optimize.linprog(
        c,
        A_ub=a_ub if a_ub.shape[0] else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.shape[0] else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        _raise_for_status(lp, result.status, result.message)
    # tolist() yields the same Python floats as per-element float();
    # names are in column order, matching result.x.
    values = dict(zip(lp.variable_names(), result.x.tolist()))
    return lp.evaluate_objective(values), values


def solve_ilp_scipy(lp: LinearProgram) -> Tuple[float, Dict[str, float]]:
    """Solve the mixed-integer program with ``scipy.optimize.milp``.

    Returns:
        ``(objective, values)`` in the model's natural direction.
    """
    c = lp.objective_vector()
    if lp.maximize:
        c = -c
    a_ub, b_ub, a_eq, b_eq = lp.sparse_rows()
    constraints = []
    if a_ub.shape[0]:
        constraints.append(optimize.LinearConstraint(
            a_ub, ub=b_ub, lb=-np.inf))
    if a_eq.shape[0]:
        constraints.append(optimize.LinearConstraint(
            a_eq, lb=b_eq, ub=b_eq))
    bounds_arr = np.array(lp.bounds(), dtype=float)
    integrality = np.array(
        [1 if var.integer else 0 for var in lp.variables])
    # Integralize integer variables' bounds: mathematically equivalent
    # (an integer point never sits in the shaved fraction) and works
    # around a HiGHS presolve defect that can return a suboptimal
    # solution when integer variables carry fractional bounds.
    is_int = integrality == 1
    bounds_arr[is_int, 0] = np.ceil(bounds_arr[is_int, 0] - 1e-9)
    bounds_arr[is_int, 1] = np.floor(bounds_arr[is_int, 1] + 1e-9)
    bounds = optimize.Bounds(lb=bounds_arr[:, 0], ub=bounds_arr[:, 1])
    result = optimize.milp(
        c,
        constraints=constraints or None,
        bounds=bounds,
        integrality=integrality,
    )
    if not result.success:
        _raise_for_status(lp, result.status, result.message)
    values = {}
    for var in lp.variables:
        val = float(result.x[var.index])
        if var.integer:
            val = float(round(val))
        values[var.name] = val
    return lp.evaluate_objective(values), values
