"""LP presolve: cheap reductions applied before either backend.

Three classical, always-safe reductions:

1. **fixed variables** - ``low == high`` variables are substituted out
   (their contribution moves into the constraint right-hand sides and
   an objective offset);
2. **singleton rows** - a constraint touching one variable is just a
   bound; it tightens the variable's bounds and disappears (an
   immediately infeasible tightening raises);
3. **empty rows** - constraints with no (remaining) coefficients are
   checked for trivial feasibility and dropped.

The reductions matter for the from-scratch simplex (every dropped row
removes a dense tableau row) and are validated against unpresolved
solves in the test suite.

Usage::

    reduced, recover = presolve(lp)
    objective, values = solve_with_simplex(reduced)
    full_values = recover(values)
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from ..exceptions import InfeasibleProblemError
from ..telemetry import get_tracer
from .model import LinearProgram

#: Maps a reduced solution back to a full-variable assignment.
Recover = Callable[[Dict[str, float]], Dict[str, float]]

_TOL = 1e-9


def presolve(lp: LinearProgram) -> Tuple[LinearProgram, Recover, float]:
    """Reduce a model; returns ``(reduced, recover, objective_offset)``.

    The reduced model's optimal objective plus `objective_offset`
    equals the original optimum, and ``recover`` completes a reduced
    solution with the fixed variables' values.

    Raises:
        InfeasibleProblemError: when a reduction proves infeasibility
            outright (conflicting singleton rows, infeasible empty
            rows, or a fixed variable violating its own bounds).
    """
    # Pass 1: collect tightened bounds from singleton rows.
    lows = {var.name: var.low for var in lp.variables}
    highs = {var.name: var.high for var in lp.variables}
    drop_rows = set()
    for con in lp.constraints:
        if len(con.coeffs) != 1:
            continue
        (idx, coef), = con.coeffs.items()
        name = lp.variables[idx].name
        bound = con.rhs / coef
        senses = {"<=": "<=", ">=": ">=", "==": "=="}
        sense = senses[con.sense]
        if coef < 0 and sense == "<=":
            sense = ">="
        elif coef < 0 and sense == ">=":
            sense = "<="
        if sense == "<=":
            highs[name] = min(highs[name], bound)
        elif sense == ">=":
            lows[name] = max(lows[name], bound)
        else:
            lows[name] = max(lows[name], bound)
            highs[name] = min(highs[name], bound)
        if lows[name] > highs[name] + _TOL:
            raise InfeasibleProblemError(
                f"{lp.name}: singleton rows force "
                f"{lows[name]} <= {name} <= {highs[name]}")
        drop_rows.add(con.name)

    # Pass 2: identify fixed variables.
    fixed: Dict[str, float] = {}
    for var in lp.variables:
        low, high = lows[var.name], highs[var.name]
        if math.isfinite(low) and abs(high - low) <= _TOL:
            fixed[var.name] = low

    # Pass 3: rebuild the reduced model.
    reduced = LinearProgram(name=f"{lp.name}:presolved",
                            maximize=lp.maximize)
    offset = 0.0
    for var in lp.variables:
        if var.name in fixed:
            offset += var.objective * fixed[var.name]
            continue
        reduced.add_variable(var.name, low=lows[var.name],
                             high=highs[var.name],
                             objective=var.objective,
                             integer=var.integer)
    for con in lp.constraints:
        if con.name in drop_rows:
            continue
        coeffs: Dict[str, float] = {}
        rhs = con.rhs
        for idx, coef in con.coeffs.items():
            name = lp.variables[idx].name
            if name in fixed:
                rhs -= coef * fixed[name]
            else:
                coeffs[name] = coef
        if not coeffs:
            feasible = ((con.sense == "<=" and rhs >= -_TOL)
                        or (con.sense == ">=" and rhs <= _TOL)
                        or (con.sense == "==" and abs(rhs) <= _TOL))
            if not feasible:
                raise InfeasibleProblemError(
                    f"{lp.name}: constraint {con.name} reduces to "
                    f"0 {con.sense} {rhs}")
            continue
        reduced.add_constraint(coeffs, con.sense, rhs, name=con.name)

    def recover(values: Dict[str, float]) -> Dict[str, float]:
        full = dict(fixed)
        full.update(values)
        return full

    return reduced, recover, offset


def solve_with_presolve(lp: LinearProgram,
                        solver: Callable[[LinearProgram],
                                         Tuple[float, Dict[str, float]]]
                        ) -> Tuple[float, Dict[str, float]]:
    """Presolve, solve the reduction, and recover the full solution.

    Args:
        lp: the model.
        solver: any ``model -> (objective, values)`` LP solver.

    Returns:
        ``(objective, values)`` for the *original* model.
    """
    tracer = get_tracer()
    with tracer.span("presolve"):
        reduced, recover, offset = presolve(lp)
    tracer.count("presolve_removed_vars",
                 lp.num_variables - reduced.num_variables)
    tracer.count("presolve_removed_rows",
                 len(lp.constraints) - len(reduced.constraints))
    if reduced.num_variables == 0:
        values = recover({})
        return lp.evaluate_objective(values), values
    objective, values = solver(reduced)
    full = recover(values)
    return objective + offset, full
