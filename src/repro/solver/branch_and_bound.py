"""From-scratch best-first branch-and-bound for integer programs.

Solves the paper's **ILP-RM** exactly on small instances (the paper:
"we devise an exact solution for the problem if the problem size is
small").  The solver relaxes integrality, solves the LP with a
pluggable backend, branches on the most fractional integer variable by
tightening its bounds, and explores nodes best-bound-first with
incumbent pruning.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import InfeasibleProblemError, SolverError
from ..telemetry import get_tracer
from .model import LinearProgram

#: An LP oracle: model -> (objective, values).  Must raise
#: InfeasibleProblemError on infeasible nodes.
LpOracle = Callable[[LinearProgram], Tuple[float, Dict[str, float]]]

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by bound (best-first)."""

    sort_key: float
    counter: int
    overrides: Dict[str, Tuple[float, float]] = field(compare=False)


def _clone_with_bounds(lp: LinearProgram,
                       overrides: Dict[str, Tuple[float, float]]
                       ) -> LinearProgram:
    """Copy a model, replacing selected variables' bounds."""
    clone = LinearProgram(name=f"{lp.name}:node", maximize=lp.maximize)
    for var in lp.variables:
        low, high = overrides.get(var.name, (var.low, var.high))
        clone.add_variable(var.name, low=low, high=high,
                           objective=var.objective, integer=var.integer)
    for con in lp.constraints:
        coeffs = {lp.variables[idx].name: coef
                  for idx, coef in con.coeffs.items()}
        clone.add_constraint(coeffs, con.sense, con.rhs, name=con.name)
    return clone


def _most_fractional(lp: LinearProgram,
                     values: Dict[str, float]) -> Optional[str]:
    """Name of the integer variable farthest from integrality, or None."""
    best_name: Optional[str] = None
    best_frac = _INT_TOL
    for var in lp.variables:
        if not var.integer:
            continue
        val = values.get(var.name, 0.0)
        frac = abs(val - round(val))
        if frac > best_frac:
            best_frac = frac
            best_name = var.name
    return best_name


def solve_with_branch_and_bound(
        lp: LinearProgram,
        lp_oracle: LpOracle,
        max_nodes: int = 20_000) -> Tuple[float, Dict[str, float]]:
    """Solve a mixed-integer program exactly.

    Args:
        lp: the model (must contain at least one integer variable to be
            interesting; a pure LP is simply handed to the oracle).
        lp_oracle: continuous-relaxation solver.
        max_nodes: node budget before giving up.

    Returns:
        ``(objective, values)`` of an optimal integral solution.

    Raises:
        InfeasibleProblemError: no integral feasible point exists.
        SolverError: node budget exhausted before proving optimality.
    """
    sign = -1.0 if lp.maximize else 1.0  # heap pops smallest sort_key

    def relax(overrides: Dict[str, Tuple[float, float]]
              ) -> Tuple[float, Dict[str, float]]:
        node_lp = _clone_with_bounds(lp, overrides)
        return lp_oracle(node_lp)

    try:
        root_obj, root_vals = relax({})
    except InfeasibleProblemError:
        raise InfeasibleProblemError(f"{lp.name}: root relaxation infeasible")

    counter = itertools.count()
    heap: List[_Node] = [
        _Node(sort_key=sign * root_obj, counter=next(counter), overrides={})]
    incumbent_obj: Optional[float] = None
    incumbent_vals: Dict[str, float] = {}
    nodes_explored = 0

    tracer = get_tracer()
    while heap:
        node = heapq.heappop(heap)
        nodes_explored += 1
        tracer.count("bnb_nodes")
        if nodes_explored > max_nodes:
            raise SolverError(
                f"{lp.name}: branch-and-bound exceeded {max_nodes} nodes")
        try:
            obj, vals = relax(node.overrides)
        except InfeasibleProblemError:
            continue
        # Bound pruning: a node cannot beat the incumbent.
        if incumbent_obj is not None:
            if lp.maximize and obj <= incumbent_obj + 1e-9:
                continue
            if not lp.maximize and obj >= incumbent_obj - 1e-9:
                continue
        branch_var = _most_fractional(lp, vals)
        if branch_var is None:
            rounded = {name: (round(val) if lp.variable(name).integer
                              else val)
                       for name, val in vals.items()}
            obj_int = lp.evaluate_objective(rounded)
            better = (incumbent_obj is None
                      or (lp.maximize and obj_int > incumbent_obj)
                      or (not lp.maximize and obj_int < incumbent_obj))
            if better:
                incumbent_obj = obj_int
                incumbent_vals = rounded
            continue
        val = vals[branch_var]
        var = lp.variable(branch_var)
        cur_low, cur_high = node.overrides.get(branch_var,
                                               (var.low, var.high))
        floor_val, ceil_val = math.floor(val), math.ceil(val)
        down = dict(node.overrides)
        down[branch_var] = (cur_low, float(floor_val))
        up = dict(node.overrides)
        up[branch_var] = (float(ceil_val), cur_high)
        for child in (down, up):
            lo, hi = child[branch_var]
            if lo <= hi:
                heapq.heappush(heap, _Node(sort_key=sign * obj,
                                           counter=next(counter),
                                           overrides=child))

    if incumbent_obj is None:
        raise InfeasibleProblemError(
            f"{lp.name}: no integral feasible solution found")
    return incumbent_obj, incumbent_vals
