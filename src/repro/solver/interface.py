"""Backend dispatch and the :class:`Solution` result type.

Two LP backends (``scipy`` = HiGHS, ``simplex`` = from-scratch) and two
ILP backends (``scipy`` = HiGHS MILP, ``bnb`` = from-scratch
branch-and-bound over either LP backend) solve the same
:class:`~repro.solver.model.LinearProgram`; tests assert they agree.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Mapping

from ..exceptions import SolverError
from ..telemetry import get_tracer
from .branch_and_bound import solve_with_branch_and_bound
from .model import LinearProgram
from .scipy_backend import solve_ilp_scipy, solve_lp_scipy
from .simplex import solve_with_simplex

#: Default LP backend for large experiment instances.
DEFAULT_LP_BACKEND = "scipy"
#: Default ILP backend.
DEFAULT_ILP_BACKEND = "scipy"


class SolveStatus(enum.Enum):
    """Terminal status of a solve call that returned."""

    OPTIMAL = "optimal"


@dataclass(frozen=True)
class Solution:
    """Result of an LP/ILP solve.

    Attributes:
        status: terminal status (always OPTIMAL for a returned
            solution; failures raise instead).
        objective: objective value in the model's natural direction.
        values: variable name -> value.
        backend: which backend produced it.
        solve_time_s: wall-clock solve time.
    """

    status: SolveStatus
    objective: float
    values: Mapping[str, float]
    backend: str
    solve_time_s: float

    def value(self, name: str) -> float:
        """Value of one variable (0.0 when absent)."""
        return float(self.values.get(name, 0.0))

    def nonzero(self, tol: float = 1e-9) -> Dict[str, float]:
        """Variables with magnitude above `tol`."""
        return {name: val for name, val in self.values.items()
                if abs(val) > tol}


def solve_lp(lp: LinearProgram,
             backend: str = DEFAULT_LP_BACKEND) -> Solution:
    """Solve the continuous relaxation of a model.

    Args:
        lp: the model (integrality flags ignored).
        backend: ``"scipy"`` (HiGHS) or ``"simplex"`` (from scratch).

    Raises:
        SolverError: unknown backend.
        InfeasibleProblemError / UnboundedProblemError: from the backend.
    """
    start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    with get_tracer().span("lp_solve", backend=backend):
        if backend == "scipy":
            objective, values = solve_lp_scipy(lp)
        elif backend == "simplex":
            objective, values = solve_with_simplex(lp)
        else:
            raise SolverError(f"unknown LP backend {backend!r}")
    elapsed = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
    return Solution(status=SolveStatus.OPTIMAL, objective=objective,
                    values=values, backend=backend, solve_time_s=elapsed)


def solve_ilp(lp: LinearProgram,
              backend: str = DEFAULT_ILP_BACKEND,
              lp_backend: str = DEFAULT_LP_BACKEND) -> Solution:
    """Solve a mixed-integer model exactly.

    Args:
        lp: the model.
        backend: ``"scipy"`` (HiGHS MILP) or ``"bnb"`` (from-scratch
            branch-and-bound).
        lp_backend: relaxation backend used when ``backend="bnb"``.

    Raises:
        SolverError: unknown backend.
        InfeasibleProblemError: no integral feasible point.
    """
    start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    with get_tracer().span("ilp_solve", backend=backend):
        if backend == "scipy":
            objective, values = solve_ilp_scipy(lp)
        elif backend == "bnb":
            def oracle(node_lp: LinearProgram):
                if lp_backend == "scipy":
                    return solve_lp_scipy(node_lp)
                if lp_backend == "simplex":
                    return solve_with_simplex(node_lp)
                raise SolverError(f"unknown LP backend {lp_backend!r}")

            objective, values = solve_with_branch_and_bound(lp, oracle)
        else:
            raise SolverError(f"unknown ILP backend {backend!r}")
    elapsed = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
    return Solution(status=SolveStatus.OPTIMAL, objective=objective,
                    values=values, backend=backend, solve_time_s=elapsed)
