"""Backend dispatch, warm-start state, and the :class:`Solution` type.

Two LP backends (``scipy`` = HiGHS, ``simplex`` = from-scratch) and two
ILP backends (``scipy`` = HiGHS MILP, ``bnb`` = from-scratch
branch-and-bound over either LP backend) solve the same
:class:`~repro.solver.model.LinearProgram`; tests assert they agree.

Warm starts
-----------

Sequences of near-identical solves (DynamicRR's per-round LP-PT, sweep
replications) thread a :class:`WarmStartState` through
:func:`solve_lp`.  It carries two things:

* an **exact solution cache** keyed by model identity plus mutation
  version (:attr:`~repro.solver.model.LinearProgram.version`): solving
  the *same model object* that has not been mutated since the previous
  solve returns the previous :class:`Solution` outright.  The state
  holds a reference to the model, so the identity check cannot alias a
  recycled object, and every structural edit bumps the version - the
  cached result is exactly the result a cold solve would produce, at
  zero hashing cost (for content-based fingerprints across distinct
  objects, see
  :meth:`~repro.solver.model.LinearProgram.content_key`);
* the previous solve's **simplex basis** for the from-scratch backend:
  a changed model starts phase 2 directly from the old optimal basis
  when it is still primal feasible, skipping phase 1.  Basis-warmed
  results agree with cold ones to solver tolerance (the tableau is
  refactorized through a dense linear solve), so the default ``scipy``
  backend never uses it; HiGHS via scipy exposes no basis hand-off, so
  for that backend a *changed* model simply solves cold.

The ``lp_solve`` telemetry span is annotated with
``warm="cold" | "hit" | "miss" | "basis"`` so traces show exactly which
path each solve took.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from ..exceptions import SolverError
from ..telemetry import get_tracer
from ..telemetry.metrics import get_metrics
from .branch_and_bound import solve_with_branch_and_bound
from .model import LinearProgram
from .scipy_backend import solve_ilp_scipy, solve_lp_scipy
from .simplex import solve_with_simplex, solve_with_simplex_state

#: Default LP backend for large experiment instances.
DEFAULT_LP_BACKEND = "scipy"
#: Default ILP backend.
DEFAULT_ILP_BACKEND = "scipy"


class SolveStatus(enum.Enum):
    """Terminal status of a solve call that returned."""

    OPTIMAL = "optimal"


@dataclass(frozen=True)
class Solution:
    """Result of an LP/ILP solve.

    Attributes:
        status: terminal status (always OPTIMAL for a returned
            solution; failures raise instead).
        objective: objective value in the model's natural direction.
        values: variable name -> value.
        backend: which backend produced it.
        solve_time_s: wall-clock solve time (near zero for a
            warm-start cache hit).
    """

    status: SolveStatus
    objective: float
    values: Mapping[str, float]
    backend: str
    solve_time_s: float

    def value(self, name: str) -> float:
        """Value of one variable (0.0 when absent)."""
        return float(self.values.get(name, 0.0))

    def nonzero(self, tol: float = 1e-9) -> Dict[str, float]:
        """Variables with magnitude above `tol`."""
        return {name: val for name, val in self.values.items()
                if abs(val) > tol}


@dataclass
class WarmStartState:
    """Mutable solve-to-solve carry-over for :func:`solve_lp`.

    Create one per logical sequence of related solves (e.g. one per
    DynamicRR run) and pass it to every :func:`solve_lp` call in the
    sequence; the state updates itself.  See the module docstring for
    what is carried and the exactness guarantees.

    Attributes:
        hits: solves answered from the fingerprint cache.
        misses: solves that ran a backend.
        basis_reuses: simplex solves that skipped phase 1 via the
            carried basis.
        last_mode: what the most recent solve did
            (``"hit"`` / ``"miss"`` / ``"basis"`` / ``"none"``).
    """

    _backend: Optional[str] = None
    _model: Optional[LinearProgram] = field(default=None, repr=False)
    _model_version: Optional[int] = None
    _solution: Optional[Solution] = None
    _simplex_basis: Optional[List[int]] = field(default=None, repr=False)
    hits: int = 0
    misses: int = 0
    basis_reuses: int = 0
    last_mode: str = "none"

    def lookup(self, backend: str,
               lp: LinearProgram) -> Optional[Solution]:
        """The cached solution iff this exact, unmutated model repeats."""
        if (self._solution is not None and self._backend == backend
                and lp is self._model
                and lp.version == self._model_version):
            return self._solution
        return None

    def store(self, backend: str, lp: LinearProgram, solution: Solution,
              simplex_basis: Optional[List[int]] = None) -> None:
        """Record a solve's outcome for the next call."""
        self._backend = backend
        self._model = lp
        self._model_version = lp.version
        self._solution = solution
        if backend == "simplex":
            self._simplex_basis = simplex_basis

    def clear(self) -> None:
        """Drop all carried state (counters are kept)."""
        self._backend = None
        self._model = None
        self._model_version = None
        self._solution = None
        self._simplex_basis = None
        self.last_mode = "none"


def solve_lp(lp: LinearProgram,
             backend: str = DEFAULT_LP_BACKEND,
             warm_start: Optional[WarmStartState] = None) -> Solution:
    """Solve the continuous relaxation of a model.

    Args:
        lp: the model (integrality flags ignored).
        backend: ``"scipy"`` (HiGHS) or ``"simplex"`` (from scratch).
        warm_start: optional cross-solve state; see
            :class:`WarmStartState`.  Without it every solve is cold.

    Raises:
        SolverError: unknown backend.
        InfeasibleProblemError / UnboundedProblemError: from the backend.
    """
    if backend not in ("scipy", "simplex"):
        raise SolverError(f"unknown LP backend {backend!r}")
    start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    with get_tracer().span("lp_solve", backend=backend) as span:
        mode = "cold"
        if warm_start is not None:
            cached = warm_start.lookup(backend, lp)
            if cached is not None:
                warm_start.hits += 1
                warm_start.last_mode = mode = "hit"
                span.annotate(warm=mode)
                get_metrics().inc("lp_solves_total", mode=mode)
                elapsed = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
                return replace(cached, solve_time_s=elapsed)
            mode = "miss"
        basis: Optional[List[int]] = None
        if backend == "scipy":
            objective, values = solve_lp_scipy(lp)
        else:
            carried = (warm_start._simplex_basis
                       if warm_start is not None else None)
            objective, values, basis, warm_used = \
                solve_with_simplex_state(lp, warm_basis=carried)
            if warm_used:
                mode = "basis"
        span.annotate(warm=mode)
        get_metrics().inc("lp_solves_total", mode=mode)
    elapsed = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
    solution = Solution(status=SolveStatus.OPTIMAL, objective=objective,
                        values=values, backend=backend,
                        solve_time_s=elapsed)
    if warm_start is not None:
        warm_start.misses += 1
        if mode == "basis":
            warm_start.basis_reuses += 1
        warm_start.last_mode = mode
        warm_start.store(backend, lp, solution, simplex_basis=basis)
    return solution


def solve_ilp(lp: LinearProgram,
              backend: str = DEFAULT_ILP_BACKEND,
              lp_backend: str = DEFAULT_LP_BACKEND) -> Solution:
    """Solve a mixed-integer model exactly.

    Args:
        lp: the model.
        backend: ``"scipy"`` (HiGHS MILP) or ``"bnb"`` (from-scratch
            branch-and-bound).
        lp_backend: relaxation backend used when ``backend="bnb"``.

    Raises:
        SolverError: unknown backend.
        InfeasibleProblemError: no integral feasible point.
    """
    start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
    with get_tracer().span("ilp_solve", backend=backend):
        if backend == "scipy":
            objective, values = solve_ilp_scipy(lp)
        elif backend == "bnb":
            def oracle(node_lp: LinearProgram):
                if lp_backend == "scipy":
                    return solve_lp_scipy(node_lp)
                if lp_backend == "simplex":
                    return solve_with_simplex(node_lp)
                raise SolverError(f"unknown LP backend {lp_backend!r}")

            objective, values = solve_with_branch_and_bound(lp, oracle)
        else:
            raise SolverError(f"unknown ILP backend {backend!r}")
    elapsed = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
    return Solution(status=SolveStatus.OPTIMAL, objective=objective,
                    values=values, backend=backend, solve_time_s=elapsed)
