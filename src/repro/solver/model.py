"""Solver-agnostic linear program model container.

A :class:`LinearProgram` accumulates named variables (with bounds,
objective coefficients, and integrality flags) and linear constraints,
then exports dense matrices for whichever backend solves it.  The
container is deliberately simple - dense export is fine at the scale of
the paper's LPs (thousands of variables) and keeps both backends honest
about solving the *same* matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError

#: Allowed constraint senses.
SENSES = ("<=", ">=", "==")


@dataclass(frozen=True)
class Variable:
    """One decision variable.

    Attributes:
        name: unique name within the program.
        index: column index in the exported matrices.
        low: lower bound (may be ``-inf``).
        high: upper bound (may be ``+inf``).
        objective: coefficient in the objective function.
        integer: whether the variable is integral (ILP only).
    """

    name: str
    index: int
    low: float
    high: float
    objective: float
    integer: bool


@dataclass(frozen=True)
class Constraint:
    """One linear constraint ``coeffs . x  <sense>  rhs``.

    Attributes:
        name: unique constraint name.
        coeffs: variable index -> coefficient (sparse row).
        sense: one of ``<=``, ``>=``, ``==``.
        rhs: right-hand side.
    """

    name: str
    coeffs: Mapping[int, float]
    sense: str
    rhs: float


class LinearProgram:
    """A (mixed-integer) linear program in natural form.

    Args:
        name: label used in error messages.
        maximize: optimization direction (the paper's programs all
            maximize expected reward).
    """

    def __init__(self, name: str = "lp", maximize: bool = True) -> None:
        self.name = name
        self.maximize = maximize
        self._variables: List[Variable] = []
        self._var_index: Dict[str, int] = {}
        self._constraints: List[Constraint] = []
        self._con_names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, name: str, low: float = 0.0,
                     high: float = math.inf, objective: float = 0.0,
                     integer: bool = False) -> Variable:
        """Add a variable; returns its handle.

        Raises:
            ConfigurationError: on duplicate names or ``low > high``.
        """
        if name in self._var_index:
            raise ConfigurationError(
                f"{self.name}: duplicate variable {name!r}")
        if low > high:
            raise ConfigurationError(
                f"{self.name}: variable {name!r} has low {low} > high {high}")
        var = Variable(name=name, index=len(self._variables), low=float(low),
                       high=float(high), objective=float(objective),
                       integer=bool(integer))
        self._variables.append(var)
        self._var_index[name] = var.index
        return var

    def add_constraint(self, coeffs: Mapping[str, float], sense: str,
                       rhs: float, name: Optional[str] = None) -> Constraint:
        """Add a constraint given by a name->coefficient mapping.

        Zero coefficients are dropped; an empty row raises unless it is
        trivially satisfiable, in which case it is stored anyway so the
        model's constraint count matches the formulation.

        Raises:
            ConfigurationError: on unknown variables, bad senses, or a
                trivially infeasible empty row.
        """
        if sense not in SENSES:
            raise ConfigurationError(
                f"{self.name}: bad sense {sense!r}, want one of {SENSES}")
        row: Dict[int, float] = {}
        for var_name, coef in coeffs.items():
            if var_name not in self._var_index:
                raise ConfigurationError(
                    f"{self.name}: unknown variable {var_name!r}")
            # Exact comparison on purpose: only *structural* zeros are
            # dropped from the row.  A near-zero coefficient is part of
            # the formulation and must reach the solver untouched - a
            # tolerance here would silently change the model.
            if coef != 0.0:  # repro: noqa NUM001 -- structural zero-drop
                row[self._var_index[var_name]] = float(coef)
        if not row:
            trivially_ok = ((sense == "<=" and rhs >= 0)
                            or (sense == ">=" and rhs <= 0)
                            or (sense == "==" and rhs == 0))
            if not trivially_ok:
                raise ConfigurationError(
                    f"{self.name}: empty constraint row with sense {sense} "
                    f"rhs {rhs} is infeasible")
        if name is None:
            name = f"c{len(self._constraints)}"
        if name in self._con_names:
            raise ConfigurationError(
                f"{self.name}: duplicate constraint {name!r}")
        con = Constraint(name=name, coeffs=row, sense=sense, rhs=float(rhs))
        self._con_names[name] = len(self._constraints)
        self._constraints.append(con)
        return con

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, by column index."""
        return tuple(self._variables)

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        """All constraints, in insertion order."""
        return tuple(self._constraints)

    @property
    def num_variables(self) -> int:
        """Number of columns."""
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        """Number of rows."""
        return len(self._constraints)

    @property
    def has_integers(self) -> bool:
        """Whether any variable is integral."""
        return any(v.integer for v in self._variables)

    def variable(self, name: str) -> Variable:
        """Look a variable up by name."""
        try:
            return self._variables[self._var_index[name]]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: unknown variable {name!r}") from None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def objective_vector(self) -> np.ndarray:
        """Dense objective coefficients (natural direction)."""
        return np.array([v.objective for v in self._variables], dtype=float)

    def bounds(self) -> List[Tuple[float, float]]:
        """Per-variable (low, high) bounds."""
        return [(v.low, v.high) for v in self._variables]

    def dense_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
        """Export as ``(A_ub, b_ub, A_eq, b_eq)``.

        ``>=`` rows are negated into ``<=`` form.  Empty matrices have
        shape ``(0, num_variables)``.
        """
        n = self.num_variables
        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in self._constraints:
            row = np.zeros(n)
            for idx, coef in con.coeffs.items():
                row[idx] = coef
            if con.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(con.rhs)
            elif con.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-con.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(con.rhs)
        a_ub = (np.vstack(ub_rows) if ub_rows
                else np.zeros((0, n)))
        a_eq = (np.vstack(eq_rows) if eq_rows
                else np.zeros((0, n)))
        return (a_ub, np.array(ub_rhs, dtype=float),
                a_eq, np.array(eq_rhs, dtype=float))

    def evaluate_objective(self, values: Mapping[str, float]) -> float:
        """Objective value of an assignment (natural direction)."""
        return float(sum(v.objective * values.get(v.name, 0.0)
                         for v in self._variables))

    def check_feasible(self, values: Mapping[str, float],
                       tol: float = 1e-6) -> List[str]:
        """Names of constraints/bounds violated by an assignment.

        Returns an empty list when the assignment is feasible within
        `tol`.  Useful in tests and for auditing rounded solutions.
        """
        violations: List[str] = []
        for var in self._variables:
            val = values.get(var.name, 0.0)
            if val < var.low - tol or val > var.high + tol:
                violations.append(f"bound:{var.name}")
            if var.integer and abs(val - round(val)) > tol:
                violations.append(f"integrality:{var.name}")
        for con in self._constraints:
            lhs = sum(coef * values.get(self._variables[idx].name, 0.0)
                      for idx, coef in con.coeffs.items())
            if con.sense == "<=" and lhs > con.rhs + tol:
                violations.append(f"constraint:{con.name}")
            elif con.sense == ">=" and lhs < con.rhs - tol:
                violations.append(f"constraint:{con.name}")
            elif con.sense == "==" and abs(lhs - con.rhs) > tol:
                violations.append(f"constraint:{con.name}")
        return violations

    def __repr__(self) -> str:
        kind = "ILP" if self.has_integers else "LP"
        sense = "max" if self.maximize else "min"
        return (f"LinearProgram({self.name!r}, {kind}, {sense}, "
                f"{self.num_variables} vars, {self.num_constraints} rows)")
