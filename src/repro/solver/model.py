"""Solver-agnostic linear program model container.

A :class:`LinearProgram` accumulates named variables (with bounds,
objective coefficients, and integrality flags) and linear constraints,
then exports matrices for whichever backend solves it.  Rows are stored
sparsely (index -> coefficient maps) and the preferred export is
:meth:`LinearProgram.sparse_rows`, which assembles CSR matrices in
O(nnz) - the paper's slot-indexed LPs are overwhelmingly zero, and the
HiGHS backend consumes CSR directly.  :meth:`dense_rows` remains for
the dense tableau simplex and for tests that want to see the full
matrices.

The container also supports in-place *incremental* edits
(:meth:`update_constraint`, :meth:`set_variable_bounds`,
:meth:`set_objective`) so a caller re-solving a near-identical model -
DynamicRR's per-round LP-PT is the canonical case - can mutate the few
changed rows instead of regenerating everything.  A monotonically
increasing version counter invalidates the cached exports and feeds the
:meth:`content_key` fingerprint that warm-started solves use to detect
an unchanged model.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError

#: Allowed constraint senses.
SENSES = ("<=", ">=", "==")


def _float_list(seq: Sequence[float]) -> List[float]:
    """`seq` as a list of Python floats (identical values, C-speed)."""
    if isinstance(seq, np.ndarray):
        return seq.astype(float, copy=False).tolist()
    return [float(x) for x in seq]


def _indexed_row(coeffs: Mapping[int, float]) -> Dict[int, float]:
    """Normalize an index-keyed row: int keys, float values, no zeros.

    ``map``/``zip``/``dict`` run the conversions at C speed; the
    explicit comprehension only runs in the rare case a structural zero
    actually needs dropping.
    """
    row = dict(zip(map(int, coeffs.keys()), map(float, coeffs.values())))
    if 0.0 in row.values():
        # Exact comparison on purpose: only *structural* zeros are
        # dropped - a near-zero coefficient is part of the formulation
        # and must reach the solver untouched.
        row = {idx: coef for idx, coef in row.items()
               if coef != 0.0}  # repro: noqa NUM001 -- structural zero-drop
    return row


@dataclass(frozen=True)
class Variable:
    """One decision variable.

    Attributes:
        name: unique name within the program.
        index: column index in the exported matrices.
        low: lower bound (may be ``-inf``).
        high: upper bound (may be ``+inf``).
        objective: coefficient in the objective function.
        integer: whether the variable is integral (ILP only).
    """

    name: str
    index: int
    low: float
    high: float
    objective: float
    integer: bool


@dataclass(frozen=True)
class Constraint:
    """One linear constraint ``coeffs . x  <sense>  rhs``.

    Attributes:
        name: unique constraint name.
        coeffs: variable index -> coefficient (sparse row).
        sense: one of ``<=``, ``>=``, ``==``.
        rhs: right-hand side.
    """

    name: str
    coeffs: Mapping[int, float]
    sense: str
    rhs: float


class LinearProgram:
    """A (mixed-integer) linear program in natural form.

    Args:
        name: label used in error messages.
        maximize: optimization direction (the paper's programs all
            maximize expected reward).
    """

    def __init__(self, name: str = "lp", maximize: bool = True) -> None:
        self.name = name
        self.maximize = maximize
        # Columns live in parallel lists, not Variable objects: the
        # slot-indexed LPs append tens of thousands of columns per
        # build, and plain list appends beat dataclass construction by
        # an order of magnitude.  The Variable view is materialized
        # lazily (and cached per version) by :attr:`variables`.
        self._names: List[str] = []
        self._lows: List[float] = []
        self._highs: List[float] = []
        self._objs: List[float] = []
        self._ints: List[bool] = []
        self._var_index: Dict[str, int] = {}
        self._constraints: List[Constraint] = []
        self._con_names: Dict[str, int] = {}
        #: Bumped on every structural edit; keys the export/fingerprint
        #: caches and lets warm-start state detect "same model object,
        #: unchanged since the last solve".
        self._version = 0
        self._vars_cache: Optional[Tuple[int, Tuple[Variable, ...]]] = None
        self._sparse_cache: Optional[Tuple[int, Tuple[Any, ...]]] = None
        self._key_cache: Optional[Tuple[int, bytes]] = None
        self._bounds_cache: Optional[
            Tuple[int, Optional[Tuple[float, float]]]] = None

    @property
    def version(self) -> int:
        """Mutation counter (bumped by every add/update call)."""
        return self._version

    def _touch(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, name: str, low: float = 0.0,
                     high: float = math.inf, objective: float = 0.0,
                     integer: bool = False) -> Variable:
        """Add a variable; returns its handle.

        Raises:
            ConfigurationError: on duplicate names or ``low > high``.
        """
        if name in self._var_index:
            raise ConfigurationError(
                f"{self.name}: duplicate variable {name!r}")
        if low > high:
            raise ConfigurationError(
                f"{self.name}: variable {name!r} has low {low} > high {high}")
        index = len(self._names)
        var = Variable(name=name, index=index, low=float(low),
                       high=float(high), objective=float(objective),
                       integer=bool(integer))
        self._names.append(name)
        self._lows.append(var.low)
        self._highs.append(var.high)
        self._objs.append(var.objective)
        self._ints.append(var.integer)
        self._var_index[name] = index
        self._touch()
        return var

    def add_variables_bulk(self, names: Sequence[str],
                           lows: Sequence[float],
                           highs: Sequence[float],
                           objectives: Sequence[float],
                           integer: bool = False) -> int:
        """Append a block of variables; returns the first column index.

        The bulk path exists for vectorized model builders (the
        slot-indexed LP creates ``|R| x |BS| x L`` columns): it skips
        the per-call overhead of :meth:`add_variable` while performing
        the same validation.

        Raises:
            ConfigurationError: on duplicate names, mismatched sequence
                lengths, or ``low > high``.
        """
        if not (len(names) == len(lows) == len(highs) == len(objectives)):
            raise ConfigurationError(
                f"{self.name}: bulk sequences have mismatched lengths")
        lows_f = _float_list(lows)
        highs_f = _float_list(highs)
        objs_f = _float_list(objectives)
        first = len(self._names)
        var_index = self._var_index
        for offset, name in enumerate(names):
            if name in var_index:
                raise ConfigurationError(
                    f"{self.name}: duplicate variable {name!r}")
            if lows_f[offset] > highs_f[offset]:
                raise ConfigurationError(
                    f"{self.name}: variable {name!r} has low "
                    f"{lows_f[offset]} > high {highs_f[offset]}")
            var_index[name] = first + offset
        self._names.extend(names)
        self._lows.extend(lows_f)
        self._highs.extend(highs_f)
        self._objs.extend(objs_f)
        self._ints.extend([bool(integer)] * len(names))
        self._touch()
        return first

    def add_constraint(self, coeffs: Mapping[str, float], sense: str,
                       rhs: float, name: Optional[str] = None) -> Constraint:
        """Add a constraint given by a name->coefficient mapping.

        Zero coefficients are dropped; an empty row raises unless it is
        trivially satisfiable, in which case it is stored anyway so the
        model's constraint count matches the formulation.

        Raises:
            ConfigurationError: on unknown variables, bad senses, or a
                trivially infeasible empty row.
        """
        if sense not in SENSES:
            raise ConfigurationError(
                f"{self.name}: bad sense {sense!r}, want one of {SENSES}")
        row: Dict[int, float] = {}
        for var_name, coef in coeffs.items():
            if var_name not in self._var_index:
                raise ConfigurationError(
                    f"{self.name}: unknown variable {var_name!r}")
            # Exact comparison on purpose: only *structural* zeros are
            # dropped from the row.  A near-zero coefficient is part of
            # the formulation and must reach the solver untouched - a
            # tolerance here would silently change the model.
            if coef != 0.0:  # repro: noqa NUM001 -- structural zero-drop
                row[self._var_index[var_name]] = float(coef)
        if not row:
            trivially_ok = ((sense == "<=" and rhs >= 0)
                            or (sense == ">=" and rhs <= 0)
                            or (sense == "==" and rhs == 0))
            if not trivially_ok:
                raise ConfigurationError(
                    f"{self.name}: empty constraint row with sense {sense} "
                    f"rhs {rhs} is infeasible")
        return self._append_constraint(row, sense, float(rhs), name)

    def add_constraint_indexed(self, coeffs: Mapping[int, float],
                               sense: str, rhs: float,
                               name: Optional[str] = None) -> Constraint:
        """Add a constraint keyed by column *index* (fast path).

        Vectorized builders already hold column indices, so this path
        skips the name->index resolution of :meth:`add_constraint`.
        The same structural-zero drop applies; indices are validated
        against the current column count.

        Raises:
            ConfigurationError: on bad senses, out-of-range indices, or
                a trivially infeasible empty row.
        """
        if sense not in SENSES:
            raise ConfigurationError(
                f"{self.name}: bad sense {sense!r}, want one of {SENSES}")
        n = len(self._names)
        if coeffs and (min(coeffs) < 0 or max(coeffs) >= n):
            bad = min(coeffs) if min(coeffs) < 0 else max(coeffs)
            raise ConfigurationError(
                f"{self.name}: column index {bad} out of range [0, {n})")
        row = _indexed_row(coeffs)
        if not row:
            trivially_ok = ((sense == "<=" and rhs >= 0)
                            or (sense == ">=" and rhs <= 0)
                            or (sense == "==" and rhs == 0))
            if not trivially_ok:
                raise ConfigurationError(
                    f"{self.name}: empty constraint row with sense {sense} "
                    f"rhs {rhs} is infeasible")
        return self._append_constraint(row, sense, float(rhs), name)

    def _append_constraint(self, row: Dict[int, float], sense: str,
                           rhs: float, name: Optional[str]) -> Constraint:
        if name is None:
            name = f"c{len(self._constraints)}"
        if name in self._con_names:
            raise ConfigurationError(
                f"{self.name}: duplicate constraint {name!r}")
        con = Constraint(name=name, coeffs=row, sense=sense, rhs=rhs)
        self._con_names[name] = len(self._constraints)
        self._constraints.append(con)
        self._touch()
        return con

    # ------------------------------------------------------------------
    # Incremental (in-place) edits
    # ------------------------------------------------------------------
    def update_constraint(self, name: str,
                          coeffs: Optional[Mapping[str, float]] = None,
                          rhs: Optional[float] = None) -> Constraint:
        """Replace a row's coefficients and/or right-hand side in place.

        The row keeps its position (export order is unchanged) and its
        sense.  This is the incremental-model primitive: DynamicRR's
        LP-PT differs between rounds only in the fair-share-capped rows
        and the arrival set, so mutating those rows beats regenerating
        the whole model.

        Args:
            coeffs: new name->coefficient mapping (None keeps the row).
            rhs: new right-hand side (None keeps it).

        Raises:
            ConfigurationError: unknown row/variables.
        """
        try:
            position = self._con_names[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: unknown constraint {name!r}") from None
        old = self._constraints[position]
        row: Mapping[int, float]
        if coeffs is None:
            row = old.coeffs
        else:
            new_row: Dict[int, float] = {}
            for var_name, coef in coeffs.items():
                if var_name not in self._var_index:
                    raise ConfigurationError(
                        f"{self.name}: unknown variable {var_name!r}")
                if coef != 0.0:  # repro: noqa NUM001 -- structural zero-drop
                    new_row[self._var_index[var_name]] = float(coef)
            row = new_row
        new_rhs = old.rhs if rhs is None else float(rhs)
        con = Constraint(name=name, coeffs=row, sense=old.sense,
                         rhs=new_rhs)
        self._constraints[position] = con
        self._touch()
        return con

    def update_constraint_indexed(self, name: str,
                                  coeffs: Mapping[int, float],
                                  rhs: Optional[float] = None
                                  ) -> Constraint:
        """Index-keyed sibling of :meth:`update_constraint` (fast path).

        Raises:
            ConfigurationError: unknown row or out-of-range indices.
        """
        try:
            position = self._con_names[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: unknown constraint {name!r}") from None
        old = self._constraints[position]
        n = len(self._names)
        if coeffs and (min(coeffs) < 0 or max(coeffs) >= n):
            bad = min(coeffs) if min(coeffs) < 0 else max(coeffs)
            raise ConfigurationError(
                f"{self.name}: column index {bad} out of range [0, {n})")
        row = _indexed_row(coeffs)
        new_rhs = old.rhs if rhs is None else float(rhs)
        con = Constraint(name=name, coeffs=row, sense=old.sense,
                         rhs=new_rhs)
        self._constraints[position] = con
        self._touch()
        return con

    def set_variable_bounds(self, name: str, low: float,
                            high: float) -> Variable:
        """Change one variable's bounds in place (column kept).

        Raises:
            ConfigurationError: unknown variable or ``low > high``.
        """
        if low > high:
            raise ConfigurationError(
                f"{self.name}: variable {name!r} has low {low} > "
                f"high {high}")
        index = self._index_of(name)
        self._lows[index] = float(low)
        self._highs[index] = float(high)
        self._touch()
        return self._make_variable(index)

    def set_objective(self, name: str, objective: float) -> Variable:
        """Change one variable's objective coefficient in place."""
        index = self._index_of(name)
        self._objs[index] = float(objective)
        self._touch()
        return self._make_variable(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _make_variable(self, index: int) -> Variable:
        return Variable(name=self._names[index], index=index,
                        low=self._lows[index], high=self._highs[index],
                        objective=self._objs[index],
                        integer=self._ints[index])

    def _index_of(self, name: str) -> int:
        try:
            return self._var_index[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: unknown variable {name!r}") from None

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, by column index (materialized lazily)."""
        cached = self._vars_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        view = tuple(Variable(name=name, index=i, low=low, high=high,
                              objective=obj, integer=integer)
                     for i, (name, low, high, obj, integer)
                     in enumerate(zip(self._names, self._lows, self._highs,
                                      self._objs, self._ints)))
        self._vars_cache = (self._version, view)
        return view

    def variable_names(self) -> List[str]:
        """All variable names, by column index."""
        return list(self._names)

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        """All constraints, in insertion order."""
        return tuple(self._constraints)

    @property
    def num_variables(self) -> int:
        """Number of columns."""
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        """Number of rows."""
        return len(self._constraints)

    @property
    def has_integers(self) -> bool:
        """Whether any variable is integral."""
        return any(self._ints)

    def variable(self, name: str) -> Variable:
        """Look a variable up by name."""
        return self._make_variable(self._index_of(name))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def objective_vector(self) -> np.ndarray:
        """Dense objective coefficients (natural direction)."""
        return np.array(self._objs, dtype=float)

    def bounds(self) -> List[Tuple[float, float]]:
        """Per-variable (low, high) bounds."""
        return list(zip(self._lows, self._highs))

    def uniform_bounds(self) -> Optional[Tuple[float, float]]:
        """The single (low, high) pair shared by *every* variable.

        Returns None when variables disagree (or there are none).  The
        paper's programs bound every ``y`` by [0, 1], and scipy accepts
        one shared pair without materializing the per-variable list -
        backends use this as a fast path.  Cached by :attr:`version`.
        """
        cached = self._bounds_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        result: Optional[Tuple[float, float]] = None
        if self._names:
            low, high = self._lows[0], self._highs[0]
            # Exact on purpose: a fast path may only trigger when the
            # bounds are the *same floats* the per-variable list would
            # carry.  list.count uses the same == as the explicit loop.
            n = len(self._names)
            if (self._lows.count(low) == n  # repro: noqa NUM001 -- bitwise fast-path guard
                    and self._highs.count(high) == n):
                result = (low, high)
        self._bounds_cache = (self._version, result)
        return result

    def dense_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
        """Export as ``(A_ub, b_ub, A_eq, b_eq)``.

        ``>=`` rows are negated into ``<=`` form.  Empty matrices have
        shape ``(0, num_variables)``.
        """
        n = self.num_variables
        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in self._constraints:
            row = np.zeros(n)
            for idx, coef in con.coeffs.items():
                row[idx] = coef
            if con.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(con.rhs)
            elif con.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-con.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(con.rhs)
        a_ub = (np.vstack(ub_rows) if ub_rows
                else np.zeros((0, n)))
        a_eq = (np.vstack(eq_rows) if eq_rows
                else np.zeros((0, n)))
        return (a_ub, np.array(ub_rhs, dtype=float),
                a_eq, np.array(eq_rhs, dtype=float))

    def sparse_rows(self) -> Tuple["sparse.csr_array", np.ndarray,
                                   "sparse.csr_array", np.ndarray]:
        """Export as CSR ``(A_ub, b_ub, A_eq, b_eq)`` in O(nnz).

        Same row semantics as :meth:`dense_rows` (``>=`` rows negated
        into ``<=`` form, insertion order preserved within each group)
        without ever materializing the dense matrices - the slot-indexed
        LPs are >99% zero at experiment scale, and both scipy entry
        points (``linprog``/``milp``) consume CSR directly.  Column
        indices are emitted sorted per row (canonical CSR), so the
        matrices are bit-identical to ``csr_array(dense_rows()[...])``.

        The export is cached against the model version; repeated solves
        of an unmutated model pay the assembly once.
        """
        if (self._sparse_cache is not None
                and self._sparse_cache[0] == self._version):
            return self._sparse_cache[1]  # type: ignore[return-value]
        n = self.num_variables
        ub_indptr = [0]
        ub_indices: List[int] = []
        ub_data: List[float] = []
        ub_rhs: List[float] = []
        eq_indptr = [0]
        eq_indices: List[int] = []
        eq_data: List[float] = []
        eq_rhs: List[float] = []
        for con in self._constraints:
            coeffs = con.coeffs
            keys = sorted(coeffs)
            if con.sense == "==":
                eq_indices.extend(keys)
                eq_data.extend(map(coeffs.__getitem__, keys))
                eq_indptr.append(len(eq_indices))
                eq_rhs.append(con.rhs)
            elif con.sense == "<=":
                ub_indices.extend(keys)
                ub_data.extend(map(coeffs.__getitem__, keys))
                ub_indptr.append(len(ub_indices))
                ub_rhs.append(con.rhs)
            else:  # ">=" rows are negated into "<=" form
                ub_indices.extend(keys)
                ub_data.extend(-coeffs[k] for k in keys)
                ub_indptr.append(len(ub_indices))
                ub_rhs.append(-con.rhs)
        a_ub = sparse.csr_array(
            (np.asarray(ub_data, dtype=float),
             np.asarray(ub_indices, dtype=np.int32),
             np.asarray(ub_indptr, dtype=np.int32)),
            shape=(len(ub_rhs), n))
        a_eq = sparse.csr_array(
            (np.asarray(eq_data, dtype=float),
             np.asarray(eq_indices, dtype=np.int32),
             np.asarray(eq_indptr, dtype=np.int32)),
            shape=(len(eq_rhs), n))
        export = (a_ub, np.asarray(ub_rhs, dtype=float),
                  a_eq, np.asarray(eq_rhs, dtype=float))
        self._sparse_cache = (self._version, export)
        return export

    def content_key(self) -> bytes:
        """Digest of the full model content (variables, rows, senses).

        Two models with equal keys describe byte-identical programs, so
        a deterministic backend returns the same solution for both -
        the property :class:`~repro.solver.interface.WarmStartState`
        relies on to reuse a previous solve exactly.  Cached against
        the model version.
        """
        if (self._key_cache is not None
                and self._key_cache[0] == self._version):
            return self._key_cache[1]
        h = hashlib.blake2b(digest_size=16)
        h.update(b"max" if self.maximize else b"min")
        h.update("\x00".join(self._names).encode())
        meta = np.array([(low, high, obj, float(integer))
                         for low, high, obj, integer
                         in zip(self._lows, self._highs, self._objs,
                                self._ints)], dtype=float)
        h.update(meta.tobytes())
        a_ub, b_ub, a_eq, b_eq = self.sparse_rows()
        for arr in (a_ub.indptr, a_ub.indices, a_ub.data, b_ub,
                    a_eq.indptr, a_eq.indices, a_eq.data, b_eq):
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update("\x00".join(c.name for c in self._constraints).encode())
        key = h.digest()
        self._key_cache = (self._version, key)
        return key

    def evaluate_objective(self, values: Mapping[str, float]) -> float:
        """Objective value of an assignment (natural direction)."""
        get = values.get
        # A list comprehension sums in the same left-to-right order as
        # the equivalent generator (identical floats), only faster.
        return float(sum([obj * get(name, 0.0)
                          for name, obj in zip(self._names, self._objs)]))

    def check_feasible(self, values: Mapping[str, float],
                       tol: float = 1e-6) -> List[str]:
        """Names of constraints/bounds violated by an assignment.

        Returns an empty list when the assignment is feasible within
        `tol`.  Useful in tests and for auditing rounded solutions.
        """
        violations: List[str] = []
        for name, low, high, integer in zip(self._names, self._lows,
                                            self._highs, self._ints):
            val = values.get(name, 0.0)
            if val < low - tol or val > high + tol:
                violations.append(f"bound:{name}")
            if integer and abs(val - round(val)) > tol:
                violations.append(f"integrality:{name}")
        for con in self._constraints:
            lhs = sum(coef * values.get(self._names[idx], 0.0)
                      for idx, coef in con.coeffs.items())
            if con.sense == "<=" and lhs > con.rhs + tol:
                violations.append(f"constraint:{con.name}")
            elif con.sense == ">=" and lhs < con.rhs - tol:
                violations.append(f"constraint:{con.name}")
            elif con.sense == "==" and abs(lhs - con.rhs) > tol:
                violations.append(f"constraint:{con.name}")
        return violations

    def __repr__(self) -> str:
        kind = "ILP" if self.has_integers else "LP"
        sense = "max" if self.maximize else "min"
        return (f"LinearProgram({self.name!r}, {kind}, {sense}, "
                f"{self.num_variables} vars, {self.num_constraints} rows)")
