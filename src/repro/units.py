"""Unit conventions and conversions used throughout the library.

The paper mixes several unit systems (Section VI-A):

* computing capacity in **MHz** (base stations: 3,000-3,600 MHz; a
  resource slot: 1,000 MHz),
* data rates in **MB/s** (requests: 30-50 MB/s) and **Mbps** in one
  sentence (10-15 Mbps for the raw uplink),
* delays in **milliseconds** (maximum response delay 200 ms) and time
  slots of **0.05 seconds**,
* rewards in **dollars per unit data rate** (12-15 $/(MB/s)).

Internally the library uses a single canonical system:

==============  =======================
quantity        canonical unit
==============  =======================
computing       MHz
data rate       MB/s
data size       MB
delay / time    millisecond
reward          dollar
==============  =======================

This module centralizes every conversion so the rest of the code never
multiplies by a bare constant.
"""

from __future__ import annotations

from .exceptions import ConfigurationError

#: Milliseconds per second.
MS_PER_SECOND: float = 1000.0

#: Bits per byte.
BITS_PER_BYTE: float = 8.0

#: Kilobytes per megabyte (decimal convention, as in the paper's 64 Kb
#: frame sizes and MB/s stream rates).
KB_PER_MB: float = 1000.0


def mbps_to_mbytes_per_s(mbps: float) -> float:
    """Convert megabits/second to megabytes/second."""
    return mbps / BITS_PER_BYTE


def mbytes_per_s_to_mbps(mbytes: float) -> float:
    """Convert megabytes/second to megabits/second."""
    return mbytes * BITS_PER_BYTE


def kb_to_mb(kilobytes: float) -> float:
    """Convert kilobytes to megabytes."""
    return kilobytes / KB_PER_MB


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / MS_PER_SECOND


def demand_mhz(data_rate_mbps: float, c_unit_mhz_per_mbps: float) -> float:
    """Computing demand (MHz) of a stream with the given data rate.

    The paper posits a linear resource model: processing one unit of
    data rate (1 MB/s) consumes ``C_unit`` MHz of computing resource.

    Args:
        data_rate_mbps: stream data rate in MB/s (must be >= 0).
        c_unit_mhz_per_mbps: MHz consumed per MB/s of stream rate
            (must be > 0).

    Returns:
        The computing demand in MHz.

    Raises:
        ConfigurationError: if either argument is out of range.
    """
    if data_rate_mbps < 0:
        raise ConfigurationError(
            f"data rate must be non-negative, got {data_rate_mbps}")
    if c_unit_mhz_per_mbps <= 0:
        raise ConfigurationError(
            f"C_unit must be positive, got {c_unit_mhz_per_mbps}")
    return data_rate_mbps * c_unit_mhz_per_mbps


def rate_from_demand(demand: float, c_unit_mhz_per_mbps: float) -> float:
    """Inverse of :func:`demand_mhz`: data rate supported by a demand.

    Args:
        demand: computing resource in MHz (must be >= 0).
        c_unit_mhz_per_mbps: MHz consumed per MB/s (must be > 0).

    Returns:
        The data rate (MB/s) that `demand` MHz can sustain.
    """
    if demand < 0:
        raise ConfigurationError(f"demand must be non-negative, got {demand}")
    if c_unit_mhz_per_mbps <= 0:
        raise ConfigurationError(
            f"C_unit must be positive, got {c_unit_mhz_per_mbps}")
    return demand / c_unit_mhz_per_mbps
