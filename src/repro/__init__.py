"""repro - reproduction of "Online Learning Algorithms for Offloading
Augmented Reality Requests with Uncertain Demands in MECs" (ICDCS 2021).

Public API tour::

    from repro import (SimulationConfig, ProblemInstance,
                       Appro, Heu, DynamicRR,
                       OnlineEngine, run_offline)

    instance = ProblemInstance.build(SimulationConfig(seed=7))
    requests = instance.new_workload(num_requests=120)
    result = run_offline(Appro(), instance, requests, seed=7)
    print(result.total_reward, result.average_latency_ms())

Subpackages:

* :mod:`repro.network` - MEC topology, paths, resource slots.
* :mod:`repro.requests` - AR pipelines, uncertain (rate, reward)
  distributions, workload generators, synthetic traces.
* :mod:`repro.solver` - LP/ILP substrate (from-scratch simplex and
  branch-and-bound, plus a HiGHS backend).
* :mod:`repro.bandits` - successive elimination / UCB1 / Lipschitz
  bandits and regret tracking.
* :mod:`repro.core` - the paper's algorithms: ILP-RM, LP, Appro, Heu,
  DynamicRR.
* :mod:`repro.baselines` - OCORP, Greedy, HeuKKT.
* :mod:`repro.sim` - offline executor and the slotted online engine.
* :mod:`repro.experiments` - drivers that regenerate Figures 3-6.
"""

from .config import (NetworkConfig, OnlineConfig, RequestConfig,
                     SimulationConfig, paper_default_config)
from .core import Appro, DynamicRR, Heu, ProblemInstance, solve_ilp_rm
from .core.assignment import OffloadDecision, ScheduleResult
from .baselines import (GreedyOffline, GreedyOnline, HeuKktOffline,
                        HeuKktOnline, OcorpOffline, OcorpOnline)
from .sim import OnlineEngine, run_offline
from .io import (load_instance, load_result, save_instance,
                 save_result)
from .exceptions import (BanditError, CapacityError, ConfigurationError,
                         InfeasibleProblemError, ReproError,
                         SchedulingError, SolverError,
                         UnboundedProblemError)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "NetworkConfig",
    "RequestConfig",
    "OnlineConfig",
    "paper_default_config",
    # core algorithms
    "ProblemInstance",
    "Appro",
    "Heu",
    "DynamicRR",
    "solve_ilp_rm",
    "OffloadDecision",
    "ScheduleResult",
    # baselines
    "GreedyOffline",
    "GreedyOnline",
    "OcorpOffline",
    "OcorpOnline",
    "HeuKktOffline",
    "HeuKktOnline",
    # engines
    "OnlineEngine",
    "run_offline",
    # persistence
    "save_instance",
    "load_instance",
    "save_result",
    "load_result",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "InfeasibleProblemError",
    "UnboundedProblemError",
    "SolverError",
    "CapacityError",
    "SchedulingError",
    "BanditError",
]
