"""Process-parallel execution layer for experiment sweeps.

Every figure of the paper is a (algorithm x swept-value x seed) grid of
independent runs.  This module decomposes such a grid into picklable
:class:`RunSpec` task descriptors and executes them through one of two
interchangeable backends:

* :class:`SerialBackend` - runs specs in-process, in order (the
  reference semantics and the right choice for tiny sweeps, where
  process startup dominates);
* :class:`ProcessBackend` - fans specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with chunked
  dispatch.

**Determinism guarantee.**  A :class:`RunSpec` is self-contained: the
worker rebuilds the problem instance, workload, and algorithm from the
spec's ``(config, seed)`` alone, and every random draw inside a run
comes from :class:`~repro.rng.RngForks` streams named from that seed.
No state is shared between tasks, so the execution schedule (worker
count, chunking, completion order) cannot change any draw, and results
are merged back in the canonical spec order.  Serial and parallel
executions of the same spec list therefore produce *identical*
:class:`~repro.sim.results.RunRecord` sequences, bit for bit.
"""

from __future__ import annotations

import cProfile
import dataclasses
import inspect
import os
import tracemalloc
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..config import SimulationConfig
from ..core.instance import ProblemInstance
from ..exceptions import ConfigurationError
from ..rng import RngForks
from ..sim.engine import run_offline
from ..sim.online_engine import OnlineEngine
from ..sim.results import RunRecord, SweepResult
from ..telemetry import ProgressReporter, Tracer, use_tracer
from ..telemetry import profiling
from ..telemetry.audit import Journal, use_journal
from ..telemetry.metrics import MetricsRegistry, use_metrics

#: ``progress`` knob: off, on (executor builds a stderr reporter), or
#: a caller-configured reporter.
ProgressKnob = Union[bool, ProgressReporter, None]

#: ``RunSpec.mode`` for batch (Figs. 3/5) runs.
OFFLINE = "offline"
#: ``RunSpec.mode`` for slotted (Figs. 4/6) runs.
ONLINE = "online"


@dataclass(frozen=True)
class RunSpec:
    """One self-contained (algorithm, x, seed) run of a sweep.

    The spec must be picklable to cross a process boundary: ``factory``
    should be a module-level class or function (the figure drivers pass
    algorithm classes), and ``config`` is a frozen dataclass.

    Attributes:
        mode: :data:`OFFLINE` or :data:`ONLINE`.
        factory: zero-argument callable building a fresh algorithm or
            policy (fresh per run - policies carry bandit state).
        x: value of the swept parameter (recorded, not interpreted).
        seed: replication seed; drives instance, workload, and
            algorithm randomness.
        config: full simulation configuration for this point.
        num_requests: workload size ``|R|``.
        horizon_slots: online monitoring period (required for
            :data:`ONLINE` mode).
        slot_length_ms: online slot length.
        trace: run under a fresh :class:`~repro.telemetry.Tracer` and
            attach the events to the record's ``trace`` field.  Purely
            additive: metrics are identical with tracing on or off.
        journal: run under a fresh decision
            :class:`~repro.telemetry.audit.Journal` and attach the
            events to the record's ``journal`` field.  Purely
            additive: metrics are identical with journaling on or off.
        profile: run under a fresh tracer + metrics registry +
            ``cProfile`` and attach a
            :class:`~repro.telemetry.profiling.ProfileDigest` (span
            attribution + domain counters) and picklable cProfile
            stats to the record.  Purely additive: metrics, traces,
            and journals are byte-identical with profiling on or off.
        profile_mem: additionally capture ``tracemalloc`` top
            allocation sites onto the record.  Purely additive, like
            ``profile``.
    """

    mode: str
    factory: Callable[[], object]
    x: float
    seed: int
    config: SimulationConfig
    num_requests: int
    horizon_slots: Optional[int] = None
    slot_length_ms: float = 50.0
    trace: bool = False
    journal: bool = False
    profile: bool = False
    profile_mem: bool = False

    def validate(self) -> "RunSpec":
        """Raise on inconsistent specs; return self for chaining."""
        if self.mode not in (OFFLINE, ONLINE):
            raise ConfigurationError(f"unknown RunSpec mode {self.mode!r}")
        if self.mode == ONLINE and self.horizon_slots is None:
            raise ConfigurationError(
                "online RunSpec needs horizon_slots")
        if self.num_requests < 1:
            raise ConfigurationError(
                f"need >= 1 request, got {self.num_requests}")
        return self


def run_metrics(result) -> Dict[str, float]:
    """The metric row every sweep records from a ``ScheduleResult``."""
    return {
        "total_reward": result.total_reward,
        "avg_latency_ms": result.average_latency_ms(),
        "runtime_s": result.runtime_s,
        "num_admitted": float(result.num_admitted),
        "num_rewarded": float(result.num_rewarded),
    }


def _fresh_algorithm(factory: Callable[[], object], seed: int):
    """Build an algorithm/policy, seeding its internal randomness.

    Factories exposing an unbound ``rng`` parameter (e.g.
    ``DynamicRR``) would otherwise fall back to OS entropy, making the
    run irreproducible - serially or in parallel.  The stream is named
    from the run seed alone, so every backend derives the same one.
    Factories with ``rng`` already bound (e.g. ``functools.partial``)
    or without the parameter are called as-is.
    """
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return factory()
    bound = getattr(factory, "keywords", None) or {}
    if "rng" in params and "rng" not in bound:
        return factory(rng=RngForks(seed).child("algorithm_rng"))
    return factory()


def execute_run(spec: RunSpec) -> RunRecord:
    """Execute one spec and return its measurement.

    Rebuilds everything from ``(config, seed)`` so the call is
    deterministic regardless of which process runs it or what ran
    before it.  With ``spec.trace`` the run executes under a fresh
    :class:`~repro.telemetry.Tracer` (installed only for its
    duration) and the record carries the trace events; with
    ``spec.journal`` it likewise executes under a fresh decision
    :class:`~repro.telemetry.audit.Journal` and carries the audit
    events home.

    With ``spec.profile`` the run additionally executes under a fresh
    tracer (shared with ``trace``), a fresh
    :class:`~repro.telemetry.metrics.MetricsRegistry` (so solver
    counters like ``simplex_iterations_total{phase}`` attribute to the
    run), and ``cProfile``; the record carries a
    :class:`~repro.telemetry.profiling.ProfileDigest` plus picklable
    cProfile stats.  ``spec.profile_mem`` captures ``tracemalloc`` top
    allocation sites.  All of it is observation only: the metrics,
    trace, and journal of a profiled run are byte-identical to an
    unprofiled one.
    """
    spec.validate()
    deep = spec.profile or spec.profile_mem
    if not spec.trace and not spec.journal and not deep:
        return _execute_untraced(spec)
    tracer = Tracer() if (spec.trace or spec.profile) else None
    journal = Journal() if spec.journal else None
    registry = MetricsRegistry() if spec.profile else None
    profiler = cProfile.Profile() if spec.profile else None
    memory_rows: Optional[List[Dict[str, object]]] = None
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        if journal is not None:
            stack.enter_context(use_journal(journal))
        if registry is not None:
            stack.enter_context(use_metrics(registry))
        own_tracemalloc = spec.profile_mem \
            and not tracemalloc.is_tracing()
        if own_tracemalloc:
            tracemalloc.start()
        try:
            if profiler is not None:
                profiler.enable()
            try:
                record = _execute_untraced(spec)
            finally:
                if profiler is not None:
                    profiler.disable()
        finally:
            if spec.profile_mem and tracemalloc.is_tracing():
                memory_rows = profiling.capture_memory_top(
                    tracemalloc.take_snapshot())
            if own_tracemalloc:
                tracemalloc.stop()
    if spec.trace and tracer is not None:
        record = dataclasses.replace(record,
                                     trace=tuple(tracer.events()))
    if journal is not None:
        record = dataclasses.replace(record,
                                     journal=tuple(journal.events()))
    if spec.profile and tracer is not None and registry is not None \
            and profiler is not None:
        digest = profiling.digest_from_events(
            tracer.events(), registry.snapshot()["counters"])
        record = dataclasses.replace(
            record, profile=digest.to_dict(),
            profile_stats=profiling.capture_stats(profiler))
    if memory_rows is not None:
        record = dataclasses.replace(
            record, profile_mem=tuple(memory_rows))
    return record


def _execute_untraced(spec: RunSpec) -> RunRecord:
    """The run itself, recording through whatever tracer is current."""
    instance = ProblemInstance.build(spec.config, seed=spec.seed)
    algorithm = _fresh_algorithm(spec.factory, spec.seed)
    if spec.mode == OFFLINE:
        workload = instance.new_workload(
            num_requests=spec.num_requests, seed=spec.seed)
        result = run_offline(algorithm, instance, workload,
                             seed=spec.seed)
    else:
        workload = instance.new_workload(
            num_requests=spec.num_requests, seed=spec.seed,
            horizon_slots=spec.horizon_slots)
        engine = OnlineEngine(
            instance, workload, horizon_slots=spec.horizon_slots,
            slot_length_ms=spec.slot_length_ms, rng=spec.seed)
        result = engine.run(algorithm)
    return RunRecord(algorithm=result.algorithm, x=spec.x,
                     seed=spec.seed, metrics=run_metrics(result))


def _execute_chunk(specs: Sequence[RunSpec]) -> List[RunRecord]:
    """Execute one dispatched chunk in a worker (picklable target)."""
    return [execute_run(spec) for spec in specs]


def workers_type(value: str) -> int:
    """argparse type for a ``--workers`` option: non-negative int."""
    import argparse

    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one per CPU), got {count}")
    return count


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob.

    ``None`` and ``1`` mean serial; ``0`` means one worker per CPU;
    any other positive value is taken literally.
    """
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0, got {workers}")
    return workers


def default_chunksize(num_specs: int, workers: int) -> int:
    """Chunk so each worker sees ~4 chunks (amortizes IPC without
    starving the pool at the tail of the sweep)."""
    return max(1, num_specs // (workers * 4))


class SerialBackend:
    """Run specs one after another in the calling process."""

    name = "serial"

    def map(self, specs: Sequence[RunSpec],
            progress: Optional[ProgressReporter] = None
            ) -> List[RunRecord]:
        """Execute all specs, preserving order.

        ``progress`` (when given) is advanced once per completed spec;
        it observes execution and cannot affect any record.
        """
        records: List[RunRecord] = []
        for spec in specs:
            records.append(execute_run(spec))
            if progress is not None:
                progress.advance(1)
        return records


class ProcessBackend:
    """Run specs on a process pool with chunked dispatch.

    Args:
        workers: pool size (>= 2 - use :class:`SerialBackend` for 1).
        chunksize: specs per dispatched chunk; a sweep-sized default
            when None.
    """

    name = "process"

    def __init__(self, workers: int,
                 chunksize: Optional[int] = None) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"ProcessBackend needs >= 2 workers, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}")
        self.workers = workers
        self.chunksize = chunksize

    def map(self, specs: Sequence[RunSpec],
            progress: Optional[ProgressReporter] = None
            ) -> List[RunRecord]:
        """Execute all specs on the pool, preserving spec order.

        Without ``progress`` the specs stream through ``pool.map``
        with chunked dispatch.  With ``progress`` the same chunks are
        submitted as futures so the reporter advances as each chunk
        *completes* (completion order is nondeterministic; the results
        are still assembled in canonical spec order, so records are
        identical either way - every run is self-contained).
        """
        if not specs:
            return []
        chunk = self.chunksize or default_chunksize(len(specs),
                                                    self.workers)
        if progress is None:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(execute_run, specs,
                                     chunksize=chunk))
        chunks = [list(specs[i:i + chunk])
                  for i in range(0, len(specs), chunk)]
        results: List[Optional[List[RunRecord]]] = [None] * len(chunks)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(_execute_chunk, part): index
                       for index, part in enumerate(chunks)}
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                progress.advance(len(chunks[index]))
        return [record for part in results for record in part]


def validate_chunksize(chunksize: Optional[int]) -> Optional[int]:
    """Reject non-positive chunk sizes up front.

    ``ProcessPoolExecutor.map`` raises a bare ``ValueError`` deep
    inside dispatch for ``chunksize < 1``; validating at construction
    turns the mistake into a :class:`ConfigurationError` on every
    path - including serial ones that would silently ignore the knob.
    """
    if chunksize is not None and chunksize < 1:
        raise ConfigurationError(
            f"chunksize must be >= 1, got {chunksize}")
    return chunksize


def make_backend(workers: Optional[int] = 1,
                 chunksize: Optional[int] = None):
    """Pick the backend matching a resolved worker count."""
    validate_chunksize(chunksize)
    resolved = resolve_workers(workers)
    if resolved <= 1:
        return SerialBackend()
    return ProcessBackend(resolved, chunksize=chunksize)


def resolve_progress(progress: ProgressKnob) -> Optional[ProgressReporter]:
    """Normalize the ``progress`` knob to a reporter or None.

    ``True`` builds a default stderr reporter; a
    :class:`~repro.telemetry.ProgressReporter` instance passes
    through; falsy values disable progress.
    """
    if isinstance(progress, ProgressReporter):
        return progress
    if progress:
        return ProgressReporter()
    return None


def execute_specs(specs: Sequence[RunSpec],
                  workers: Optional[int] = 1,
                  chunksize: Optional[int] = None,
                  trace: bool = False,
                  journal: bool = False,
                  profile: bool = False,
                  profile_mem: bool = False,
                  progress: ProgressKnob = None) -> List[RunRecord]:
    """Execute a spec list and return records in canonical spec order.

    Args:
        specs: the runs.
        workers: process count (1 = serial, 0 = one per CPU).
        chunksize: specs per dispatched chunk when parallel.
        trace: force tracing on for every spec; each run (wherever it
            executes) records its own trace, carried home on its
            record in canonical spec order.
        journal: force decision journaling on for every spec; each run
            records its own audit journal, carried home on its record
            in canonical spec order (merge with
            :func:`~repro.telemetry.audit.collect_sweep_journal`).
        profile: force profiling on for every spec; each run carries a
            :class:`~repro.telemetry.profiling.ProfileDigest` +
            cProfile stats home in canonical spec order (merge with
            :func:`~repro.telemetry.profiling.collect_sweep_profiles`).
            Observation only: records are byte-identical with
            profiling on or off.
        profile_mem: force allocation-site capture on for every spec.
        progress: live heartbeat - ``True`` for the default stderr
            reporter or a pre-configured
            :class:`~repro.telemetry.ProgressReporter`.  Observation
            only: records are byte-identical with progress on or off.
    """
    validate_chunksize(chunksize)
    if trace:
        specs = [dataclasses.replace(spec, trace=True)
                 for spec in specs]
    if journal:
        specs = [dataclasses.replace(spec, journal=True)
                 for spec in specs]
    if profile:
        specs = [dataclasses.replace(spec, profile=True)
                 for spec in specs]
    if profile_mem:
        specs = [dataclasses.replace(spec, profile_mem=True)
                 for spec in specs]
    for spec in specs:
        spec.validate()
    reporter = resolve_progress(progress)
    if reporter is not None:
        reporter.start(len(specs))
    records = make_backend(workers, chunksize).map(specs,
                                                   progress=reporter)
    if reporter is not None:
        reporter.finish()
    return records


def execute_sweep(specs: Sequence[RunSpec], x_label: str,
                  workers: Optional[int] = 1,
                  chunksize: Optional[int] = None,
                  trace: bool = False,
                  journal: bool = False,
                  profile: bool = False,
                  profile_mem: bool = False,
                  progress: ProgressKnob = None) -> SweepResult:
    """Execute a spec list and bundle the records into a sweep."""
    sweep = SweepResult(x_label)
    sweep.extend(execute_specs(specs, workers=workers,
                               chunksize=chunksize, trace=trace,
                               journal=journal, profile=profile,
                               profile_mem=profile_mem,
                               progress=progress))
    return sweep
