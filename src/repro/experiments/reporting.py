"""ASCII rendering of sweep results, in the paper's figure layout.

The benches print these tables so a reproduction run ends with the
same rows/series the paper plots - one table per figure panel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.results import SweepResult

#: Display order matching the paper's legends.
_PREFERRED_ORDER = ("Appro", "Heu", "DynamicRR", "Greedy", "OCORP",
                    "HeuKKT")


def _ordered_algorithms(sweep: SweepResult) -> List[str]:
    present = sweep.algorithms()
    ordered = [name for name in _PREFERRED_ORDER if name in present]
    ordered.extend(name for name in present if name not in ordered)
    return ordered


def render_table(sweep: SweepResult, metric: str,
                 title: Optional[str] = None,
                 fmt: str = "{:.1f}") -> str:
    """Render one metric of a sweep as a fixed-width table.

    Args:
        sweep: the experiment results.
        metric: which metric column to show.
        title: optional heading line.
        fmt: cell format for metric values.

    Returns:
        A multi-line string; one row per algorithm, one column per
        swept value.
    """
    xs = sweep.x_values()
    lines: List[str] = []
    if title:
        lines.append(title)
    header_cells = [f"{sweep.x_label:>14}"] + [
        f"{x:>12g}" for x in xs]
    lines.append(" ".join(header_cells))
    lines.append("-" * len(lines[-1]))
    for algorithm in _ordered_algorithms(sweep):
        xs_a, means, _ = sweep.series(algorithm, metric)
        by_x = dict(zip(xs_a, means))
        cells = [f"{algorithm:>14}"]
        for x in xs:
            if x in by_x:
                cells.append(f"{fmt.format(by_x[x]):>12}")
            else:
                cells.append(f"{'-':>12}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_ascii_plot(sweep: SweepResult, metric: str,
                      height: int = 12, width: int = 60,
                      title: Optional[str] = None) -> str:
    """A terminal line plot of one metric's mean series.

    Each algorithm gets a marker (its initial); markers share the
    canvas so crossings are visible.  Y-axis labels show the value
    range; the X-axis lists the swept values.

    Args:
        sweep: the experiment results.
        metric: metric to plot.
        height: canvas rows.
        width: canvas columns.
        title: optional heading.
    """
    if height < 2 or width < 2:
        raise ValueError("canvas must be at least 2x2")
    algorithms = _ordered_algorithms(sweep)
    xs = sweep.x_values()
    if not xs or not algorithms:
        return "(empty sweep)"

    series = {}
    lo, hi = float("inf"), float("-inf")
    for algorithm in algorithms:
        xs_a, means, _ = sweep.series(algorithm, metric)
        by_x = dict(zip(xs_a, means))
        values = [by_x.get(x) for x in xs]
        series[algorithm] = values
        for value in values:
            if value is not None:
                lo, hi = min(lo, value), max(hi, value)
    if hi <= lo:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    for algorithm in algorithms:
        marker = algorithm[0].upper()
        while marker in used:
            marker = chr(ord(marker) + 1)
        used.add(marker)
        markers[algorithm] = marker

    def col_of(i: int) -> int:
        if len(xs) == 1:
            return width // 2
        return round(i * (width - 1) / (len(xs) - 1))

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for algorithm in algorithms:
        for i, value in enumerate(series[algorithm]):
            if value is None:
                continue
            r, c = row_of(value), col_of(i)
            cell = canvas[r][c]
            canvas[r][c] = "*" if cell not in (" ", markers[algorithm]) \
                else markers[algorithm]

    lines: List[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(canvas):
        if r == 0:
            label = f"{hi:>10.1f} |"
        elif r == height - 1:
            label = f"{lo:>10.1f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{xs[0]:<10g}"
                 + " " * max(0, width - 22) + f"{xs[-1]:>10g}")
    legend = "  ".join(f"{markers[a]}={a}" for a in algorithms)
    lines.append(" " * 12 + legend + "  (*=overlap)")
    return "\n".join(lines)


def render_figure(sweep: SweepResult, panels: Sequence[str],
                  figure_name: str) -> str:
    """Render several metric panels of one figure.

    Args:
        sweep: the experiment results.
        panels: metric names, e.g. ``("total_reward",
            "avg_latency_ms", "runtime_s")``.
        figure_name: heading, e.g. ``"Figure 3"``.
    """
    blocks: List[str] = []
    labels = "abcdefgh"
    for i, metric in enumerate(panels):
        fmt = "{:.4f}" if metric == "runtime_s" else "{:.1f}"
        blocks.append(render_table(
            sweep, metric,
            title=f"{figure_name} ({labels[i]}): {metric}",
            fmt=fmt))
    return "\n\n".join(blocks)
