"""Command-line driver: ``python -m repro.experiments``.

Runs the Section VI figures and prints the paper-style tables, with
optional CSV export::

    python -m repro.experiments --figures 3 4 --scale bench
    python -m repro.experiments --figures all --scale paper --out results/

The bench scale finishes in about a minute; the paper scale runs the
full Section VI sweeps (several minutes).

Telemetry: ``--trace PATH`` records a :mod:`repro.telemetry` trace of
every run (one JSONL event stream, merged in canonical RunSpec order)
and ``--trace-summary`` prints the aggregated per-phase breakdown -
where the milliseconds went, span by span::

    python -m repro.experiments --figures 3 --trace fig3.jsonl --trace-summary

Observability across runs: ``--progress`` adds a live stderr heartbeat
(completed/total specs, throughput, ETA) while sweeps execute;
``--ledger PATH`` appends a :class:`~repro.telemetry.RunManifest`
(config hash, git rev, seeds, peak RSS, per-figure wall-clock,
headline metrics per algorithm) to a JSONL ledger and ``--bench-out
PATH`` exports it as a ``BENCH_<name>.json`` snapshot.  The
``bench-diff`` subcommand compares two such files and exits non-zero
on regression::

    python -m repro.experiments --figures 3 --bench-out BENCH_new.json
    python -m repro.experiments bench-diff BENCH_old.json BENCH_new.json --tol 0.05

Decision auditing: ``--journal PATH`` records every scheduling
decision (arrivals, starts, drops, migrations, rounding admissions,
bandit arm plays/eliminations, station outages) to a canonical JSONL
journal, ``--audit`` replays each run's journal through the invariant
monitor and prints the audit, and the ``trace-diff`` subcommand aligns
two journals and localizes the first divergent event (exit 0/1/2 like
bench-diff)::

    python -m repro.experiments --figures 3 --journal serial.jsonl
    python -m repro.experiments --figures 3 --workers 2 --journal par.jsonl
    python -m repro.experiments trace-diff serial.jsonl par.jsonl

Performance attribution: ``--profile`` records a
:class:`~repro.telemetry.ProfileDigest` per run (span-tree self/cum
time, call counts, domain counters joined onto their owning spans)
plus cProfile stats, merged per algorithm and embedded into any
``--ledger`` / ``--bench-out`` manifest; ``--profile-json PATH``
exports the digests as ``PROF_<name>.json``, ``--profile-out PATH``
writes a collapsed-stack flamegraph (speedscope / flamegraph.pl), and
``--profile-mem`` captures top allocation sites.  The ``perf-diff``
subcommand compares two digest-bearing artifacts and localizes the
worst regressed span (exit 0/1/2 like bench-diff)::

    python -m repro.experiments --figures 3 --profile --bench-out BENCH_new.json
    python -m repro.experiments perf-diff benchmarks/PROF_baseline.json BENCH_new.json

Profiling is observation-only: records, journals, and manifest metrics
are byte-identical with it on or off (see ``docs/PROFILING.md``).

The streaming admission service (``python -m repro.service loadgen`` /
``resume``) emits the same journal format and ``BENCH_service.json``
manifests, so ``trace-diff`` doubles as its resume byte-identity gate
and ``bench-diff`` as its throughput-regression check - see
``docs/SERVICE.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from ..telemetry import (ProgressReporter, audit_records,
                         collect_sweep_journal, collect_sweep_profiles,
                         collect_sweep_trace, folded_from_stats,
                         manifest_from_sweeps, merge_memory,
                         merge_stats, render_digest,
                         render_memory_top, render_summary,
                         write_folded, write_jsonl,
                         write_profile_set)
from ..telemetry.ledger import append_ledger, write_bench
from .executor import resolve_workers, workers_type
from .export import export_figure
from .figures import figure3, figure4, figure5, figure6
from .reporting import render_ascii_plot, render_figure
from .settings import bench_scale, paper_scale

_FIGURES = {
    "3": (figure3, ("total_reward", "avg_latency_ms", "runtime_s")),
    "4": (figure4, ("total_reward", "avg_latency_ms")),
    "5": (figure5, ("total_reward", "avg_latency_ms")),
    "6": (figure6, ("total_reward", "avg_latency_ms")),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures (ICDCS 2021 MEC/AR "
                    "offloading reproduction).  The bench-diff "
                    "subcommand (python -m repro.experiments "
                    "bench-diff OLD NEW) compares two run ledgers; the "
                    "trace-diff subcommand (python -m repro.experiments "
                    "trace-diff A.jsonl B.jsonl) localizes the first "
                    "divergent event between two decision journals.")
    parser.add_argument("--figures", nargs="+", default=["all"],
                        choices=["3", "4", "5", "6", "all"],
                        help="which figures to run (default: all)")
    parser.add_argument("--scale", choices=["bench", "paper"],
                        default="bench",
                        help="sweep size preset (default: bench)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for CSV export (optional)")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII line plots")
    parser.add_argument("--workers", type=workers_type, default=1,
                        metavar="N",
                        help="worker processes per sweep (1 = serial, "
                             "0 = one per CPU; results are identical "
                             "for every value)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a telemetry trace of every run "
                             "and write the merged JSONL here")
    parser.add_argument("--trace-summary", action="store_true",
                        help="print the aggregated span breakdown "
                             "(implies tracing)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="record a decision audit journal of every "
                             "run and write the merged JSONL here "
                             "(diffable with trace-diff)")
    parser.add_argument("--audit", action="store_true",
                        help="replay every journaled run through the "
                             "invariant monitor and print the audit "
                             "(implies journaling)")
    parser.add_argument("--profile", action="store_true",
                        help="record a performance-attribution digest "
                             "(span tree + domain counters) and "
                             "cProfile stats per run; digests print "
                             "per algorithm and embed into any "
                             "--ledger/--bench-out manifest (records "
                             "are unchanged)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="write a collapsed-stack flamegraph "
                             "(.folded, speedscope/flamegraph.pl "
                             "loadable) of the merged cProfile stats "
                             "(implies --profile)")
    parser.add_argument("--profile-json", default=None, metavar="PATH",
                        help="export the merged per-algorithm digests "
                             "as PROF_<name>.json (perf-diff input; "
                             "implies --profile)")
    parser.add_argument("--profile-mem", action="store_true",
                        help="additionally capture tracemalloc top "
                             "allocation sites per run and print the "
                             "merged table")
    parser.add_argument("--progress", action="store_true",
                        help="live stderr heartbeat while sweeps run "
                             "(completed/total specs, throughput, ETA; "
                             "records are unchanged)")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="append a RunManifest for this invocation "
                             "to a JSONL run ledger")
    parser.add_argument("--bench-out", default=None, metavar="PATH",
                        help="export the RunManifest as a "
                             "BENCH_<name>.json snapshot")
    parser.add_argument("--bench-name", default=None, metavar="NAME",
                        help="manifest name (default: "
                             "figures-<ids>-<scale>)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "bench-diff":
        from ..telemetry.regression import main as bench_diff_main
        return bench_diff_main(argv[1:])
    if argv and argv[0] == "trace-diff":
        from ..telemetry.tracediff import main as trace_diff_main
        return trace_diff_main(argv[1:])
    if argv and argv[0] == "perf-diff":
        from ..telemetry.perfdiff import main as perf_diff_main
        return perf_diff_main(argv[1:])
    args = build_parser().parse_args(argv)
    wanted = list(_FIGURES) if "all" in args.figures else args.figures
    scale = paper_scale() if args.scale == "paper" else bench_scale()
    tracing = bool(args.trace or args.trace_summary)
    journaling = bool(args.journal or args.audit)
    profiling = bool(args.profile or args.profile_out
                     or args.profile_json)
    trace_events: List[Dict] = []
    journal_events: List[Dict] = []
    audited_sweeps: List = []
    reporter = ProgressReporter() if args.progress else None
    sweeps: Dict[str, object] = {}
    phases: Dict[str, float] = {}

    for fig_id in wanted:
        driver, panels = _FIGURES[fig_id]
        driver_kwargs = {"workers": args.workers, "trace": tracing}
        if journaling:
            driver_kwargs["journal"] = True
        if profiling:
            driver_kwargs["profile"] = True
        if args.profile_mem:
            driver_kwargs["profile_mem"] = True
        if reporter is not None:
            # Only passed when live: stubbed/third-party drivers
            # without the knob keep working unless it is asked for.
            reporter.set_phase(f"fig{fig_id}")
            driver_kwargs["progress"] = reporter
        started = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        sweep = driver(scale, **driver_kwargs)
        phases[f"fig{fig_id}"] = time.perf_counter() - started  # repro: noqa DET001 -- advisory runtime metric
        sweeps[f"fig{fig_id}"] = sweep
        if tracing:
            for event in collect_sweep_trace(sweep.records):
                event["figure"] = fig_id
                trace_events.append(event)
        if journaling:
            for event in collect_sweep_journal(sweep.records):
                event["figure"] = fig_id
                journal_events.append(event)
            audited_sweeps.append((fig_id, sweep))
        print(render_figure(sweep, panels, f"Figure {fig_id}"))
        print()
        if args.plot:
            for metric in panels:
                print(render_ascii_plot(
                    sweep, metric,
                    title=f"Figure {fig_id}: {metric}"))
                print()
        if args.out:
            paths = export_figure(sweep, args.out, f"fig{fig_id}")
            for path in paths:
                print(f"  wrote {path}")
            print()

    if args.ledger or args.bench_out:
        name = args.bench_name or (
            f"figures-{'-'.join(wanted)}-{args.scale}")
        manifest = manifest_from_sweeps(
            name, sweeps,
            config={"scale": scale, "figures": wanted},
            workers=resolve_workers(args.workers),
            phases=phases,
            extra={"scale": args.scale, "figures": wanted})
        if args.ledger:
            path = append_ledger(args.ledger, manifest)
            print(f"appended manifest {name!r} to {path}")
        if args.bench_out:
            path = write_bench(args.bench_out, manifest)
            print(f"wrote manifest {name!r} to {path}")

    if profiling:
        digests = collect_sweep_profiles(sweeps)
        print()
        print("Profile digests")
        for name in sorted(digests):
            print(f"== {name} ==")
            print(render_digest(digests[name], top=10))
            print()
        if args.profile_json:
            path = write_profile_set(args.profile_json, digests)
            print(f"wrote {len(digests)} digest(s) to {path}")
        if args.profile_out:
            stats = merge_stats(
                record.profile_stats
                for sweep in sweeps.values()
                for record in sweep.records
                if record.profile_stats)
            path = write_folded(args.profile_out,
                                folded_from_stats(stats))
            print(f"wrote collapsed stacks to {path}")
    if args.profile_mem:
        rows = merge_memory(
            record.profile_mem
            for sweep in sweeps.values()
            for record in sweep.records
            if record.profile_mem)
        print()
        print("Top allocation sites")
        print(render_memory_top(rows))

    if args.trace:
        path = write_jsonl(args.trace, trace_events)
        print(f"wrote trace ({len(trace_events)} events) to {path}")
    if args.trace_summary:
        print()
        print("Telemetry summary")
        print(render_summary(trace_events))
    if args.journal:
        path = write_jsonl(args.journal, journal_events)
        print(f"wrote journal ({len(journal_events)} events) to {path}")
    if args.audit:
        failed = False
        print()
        print("Invariant audit")
        for fig_id, sweep in audited_sweeps:
            outcome = audit_records(sweep.records)
            verdict = ("ok" if not outcome.violations
                       else f"{len(outcome.violations)} violation(s)")
            checks = sum(outcome.checks.values())
            print(f"  fig{fig_id}: {outcome.runs_audited} run(s), "
                  f"{checks} checks, {verdict}")
            for tag, violation in outcome.violations:
                failed = True
                print(f"    {tag}: {violation}")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
