"""Command-line driver: ``python -m repro.experiments``.

Runs the Section VI figures and prints the paper-style tables, with
optional CSV export::

    python -m repro.experiments --figures 3 4 --scale bench
    python -m repro.experiments --figures all --scale paper --out results/

The bench scale finishes in about a minute; the paper scale runs the
full Section VI sweeps (several minutes).

Telemetry: ``--trace PATH`` records a :mod:`repro.telemetry` trace of
every run (one JSONL event stream, merged in canonical RunSpec order)
and ``--trace-summary`` prints the aggregated per-phase breakdown -
where the milliseconds went, span by span::

    python -m repro.experiments --figures 3 --trace fig3.jsonl --trace-summary
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from ..telemetry import collect_sweep_trace, render_summary, write_jsonl
from .executor import workers_type
from .export import export_figure
from .figures import figure3, figure4, figure5, figure6
from .reporting import render_ascii_plot, render_figure
from .settings import bench_scale, paper_scale

_FIGURES = {
    "3": (figure3, ("total_reward", "avg_latency_ms", "runtime_s")),
    "4": (figure4, ("total_reward", "avg_latency_ms")),
    "5": (figure5, ("total_reward", "avg_latency_ms")),
    "6": (figure6, ("total_reward", "avg_latency_ms")),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures (ICDCS 2021 MEC/AR "
                    "offloading reproduction).")
    parser.add_argument("--figures", nargs="+", default=["all"],
                        choices=["3", "4", "5", "6", "all"],
                        help="which figures to run (default: all)")
    parser.add_argument("--scale", choices=["bench", "paper"],
                        default="bench",
                        help="sweep size preset (default: bench)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for CSV export (optional)")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII line plots")
    parser.add_argument("--workers", type=workers_type, default=1,
                        metavar="N",
                        help="worker processes per sweep (1 = serial, "
                             "0 = one per CPU; results are identical "
                             "for every value)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a telemetry trace of every run "
                             "and write the merged JSONL here")
    parser.add_argument("--trace-summary", action="store_true",
                        help="print the aggregated span breakdown "
                             "(implies tracing)")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    wanted = list(_FIGURES) if "all" in args.figures else args.figures
    scale = paper_scale() if args.scale == "paper" else bench_scale()
    tracing = bool(args.trace or args.trace_summary)
    trace_events: List[Dict] = []

    for fig_id in wanted:
        driver, panels = _FIGURES[fig_id]
        sweep = driver(scale, workers=args.workers, trace=tracing)
        if tracing:
            for event in collect_sweep_trace(sweep.records):
                event["figure"] = fig_id
                trace_events.append(event)
        print(render_figure(sweep, panels, f"Figure {fig_id}"))
        print()
        if args.plot:
            for metric in panels:
                print(render_ascii_plot(
                    sweep, metric,
                    title=f"Figure {fig_id}: {metric}"))
                print()
        if args.out:
            paths = export_figure(sweep, args.out, f"fig{fig_id}")
            for path in paths:
                print(f"  wrote {path}")
            print()

    if args.trace:
        path = write_jsonl(args.trace, trace_events)
        print(f"wrote trace ({len(trace_events)} events) to {path}")
    if args.trace_summary:
        print()
        print("Telemetry summary")
        print(render_summary(trace_events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
