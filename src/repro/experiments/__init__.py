"""Experiment drivers that regenerate the paper's figures.

Each ``figure*`` function in :mod:`~repro.experiments.figures` runs the
sweep behind one figure of Section VI and returns a
:class:`~repro.sim.results.SweepResult` whose series have the same
shape as the paper's plots.  :mod:`~repro.experiments.reporting`
renders them as ASCII tables (the benches print those), and
:mod:`~repro.experiments.settings` holds the paper-scale and
bench-scale parameter presets.  :mod:`~repro.experiments.executor`
fans sweep grids out over worker processes (the ``workers`` knob on
every driver) with records identical to the serial path.
"""

from .settings import ExperimentScale, bench_scale, paper_scale
from .executor import (RunSpec, execute_run, execute_specs,
                       execute_sweep, resolve_workers)
from .runner import (build_offline_specs, build_online_specs,
                     run_offline_sweep, run_online_sweep)
from .figures import figure3, figure4, figure5, figure6
from .validation import (ShapeCheck, check_dominates, check_monotone,
                         check_saturates, check_winner_everywhere,
                         validate_all)
from .reporting import render_ascii_plot, render_figure, render_table

__all__ = [
    "ExperimentScale",
    "paper_scale",
    "bench_scale",
    "RunSpec",
    "execute_run",
    "execute_specs",
    "execute_sweep",
    "resolve_workers",
    "build_offline_specs",
    "build_online_specs",
    "run_offline_sweep",
    "run_online_sweep",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "render_table",
    "render_ascii_plot",
    "render_figure",
    "ShapeCheck",
    "check_dominates",
    "check_monotone",
    "check_saturates",
    "check_winner_everywhere",
    "validate_all",
]
