"""Seed-replicated sweep runners for offline and online experiments.

Both runners follow the same shape: for every swept value, build the
configuration, and for every seed and algorithm emit one picklable
:class:`~repro.experiments.executor.RunSpec`.  The spec list is then
executed by :mod:`~repro.experiments.executor` - serially by default,
or on a process pool with ``workers > 1`` - and the resulting
:class:`~repro.sim.results.RunRecord` rows are merged into a
:class:`~repro.sim.results.SweepResult` in canonical
(x, seed, algorithm) order, identical for every backend.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..config import SimulationConfig
from ..sim.engine import OfflineAlgorithm
from ..sim.online_engine import OnlinePolicy
from ..sim.results import SweepResult
from .executor import (OFFLINE, ONLINE, ProgressKnob, RunSpec,
                       execute_sweep)

#: Builds the configuration for one swept value and seed.
ConfigFactory = Callable[[float, int], SimulationConfig]
#: Builds a fresh offline algorithm (stateless reuse is fine too).
OfflineFactory = Callable[[], OfflineAlgorithm]
#: Builds a fresh online policy (must be fresh per run - policies carry
#: bandit state).
OnlineFactory = Callable[[], OnlinePolicy]


def build_offline_specs(algorithm_factories: Sequence[OfflineFactory],
                        x_values: Sequence[float],
                        make_config: ConfigFactory,
                        num_requests_of: Callable[[float], int],
                        num_seeds: int = 3) -> List[RunSpec]:
    """Decompose an offline sweep into specs in canonical order."""
    specs: List[RunSpec] = []
    for x in x_values:
        for seed in range(num_seeds):
            config = make_config(x, seed)
            for factory in algorithm_factories:
                specs.append(RunSpec(
                    mode=OFFLINE, factory=factory, x=x, seed=seed,
                    config=config,
                    num_requests=num_requests_of(x)).validate())
    return specs


def build_online_specs(policy_factories: Sequence[OnlineFactory],
                       x_values: Sequence[float],
                       make_config: ConfigFactory,
                       num_requests_of: Callable[[float], int],
                       horizon_slots: int,
                       num_seeds: int = 3) -> List[RunSpec]:
    """Decompose an online sweep into specs in canonical order."""
    specs: List[RunSpec] = []
    for x in x_values:
        for seed in range(num_seeds):
            config = make_config(x, seed)
            for factory in policy_factories:
                specs.append(RunSpec(
                    mode=ONLINE, factory=factory, x=x, seed=seed,
                    config=config,
                    num_requests=num_requests_of(x),
                    horizon_slots=horizon_slots,
                    slot_length_ms=config.online.slot_length_ms,
                ).validate())
    return specs


def run_offline_sweep(algorithm_factories: Sequence[OfflineFactory],
                      x_values: Sequence[float],
                      make_config: ConfigFactory,
                      num_requests_of: Callable[[float], int],
                      num_seeds: int = 3,
                      x_label: str = "x",
                      workers: Optional[int] = 1,
                      chunksize: Optional[int] = None,
                      trace: bool = False,
                      journal: bool = False,
                      profile: bool = False,
                      profile_mem: bool = False,
                      progress: ProgressKnob = None) -> SweepResult:
    """Run a batch-algorithm sweep (Figs. 3 and 5).

    Args:
        algorithm_factories: one factory per algorithm.  With
            ``workers > 1`` each factory must be picklable (a
            module-level class or function).
        x_values: swept parameter values.
        make_config: (x, seed) -> configuration.
        num_requests_of: x -> workload size |R| for that point.
        num_seeds: replications per point.
        x_label: axis label for the result.
        workers: process count (1 = serial, 0 = one per CPU).  Records
            are identical for every worker count.
        chunksize: specs per dispatched chunk when parallel.
        trace: record a :mod:`repro.telemetry` trace per run and
            attach it to each record (off by default; metrics are
            unchanged either way).
        journal: record a decision audit journal per run (see
            :mod:`repro.telemetry.audit`) and attach it to each record
            (off by default; metrics are unchanged either way).
        profile: record a profile digest + cProfile stats per run (see
            :mod:`repro.telemetry.profiling`) and attach them to each
            record (off by default; metrics are unchanged either way).
        profile_mem: additionally record top allocation sites per run.
        progress: live stderr heartbeat - ``True`` or a configured
            :class:`~repro.telemetry.ProgressReporter` (observation
            only; records are identical with progress on or off).

    Returns:
        A populated :class:`SweepResult`.
    """
    specs = build_offline_specs(algorithm_factories, x_values,
                                make_config, num_requests_of,
                                num_seeds=num_seeds)
    return execute_sweep(specs, x_label, workers=workers,
                         chunksize=chunksize, trace=trace,
                         journal=journal, profile=profile,
                         profile_mem=profile_mem, progress=progress)


def run_online_sweep(policy_factories: Sequence[OnlineFactory],
                     x_values: Sequence[float],
                     make_config: ConfigFactory,
                     num_requests_of: Callable[[float], int],
                     horizon_slots: int,
                     num_seeds: int = 3,
                     x_label: str = "x",
                     workers: Optional[int] = 1,
                     chunksize: Optional[int] = None,
                     trace: bool = False,
                     journal: bool = False,
                     profile: bool = False,
                     profile_mem: bool = False,
                     progress: ProgressKnob = None) -> SweepResult:
    """Run an online-policy sweep (Figs. 4 and 6).

    Every policy sees the same arrival sequence per (x, seed); requests
    are re-drawn fresh for each policy so realization state never leaks
    between runs.  Accepts the same ``workers`` / ``chunksize`` /
    ``trace`` / ``journal`` / ``profile`` / ``profile_mem`` /
    ``progress`` knobs as :func:`run_offline_sweep`, with
    the same determinism guarantee.
    """
    specs = build_online_specs(policy_factories, x_values, make_config,
                               num_requests_of, horizon_slots,
                               num_seeds=num_seeds)
    return execute_sweep(specs, x_label, workers=workers,
                         chunksize=chunksize, trace=trace,
                         journal=journal, profile=profile,
                         profile_mem=profile_mem, progress=progress)
