"""Seed-replicated sweep runners for offline and online experiments.

Both runners follow the same shape: for every swept value, build the
configuration, instantiate a fresh problem instance and workload per
seed, run every algorithm on identical copies, and collect
:class:`~repro.sim.results.RunRecord` rows into a
:class:`~repro.sim.results.SweepResult`.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..config import SimulationConfig
from ..core.instance import ProblemInstance
from ..sim.engine import OfflineAlgorithm, run_offline
from ..sim.online_engine import OnlineEngine, OnlinePolicy
from ..sim.results import RunRecord, SweepResult

#: Builds the configuration for one swept value and seed.
ConfigFactory = Callable[[float, int], SimulationConfig]
#: Builds a fresh offline algorithm (stateless reuse is fine too).
OfflineFactory = Callable[[], OfflineAlgorithm]
#: Builds a fresh online policy (must be fresh per run - policies carry
#: bandit state).
OnlineFactory = Callable[[], OnlinePolicy]


def _metrics_of(result) -> Dict[str, float]:
    return {
        "total_reward": result.total_reward,
        "avg_latency_ms": result.average_latency_ms(),
        "runtime_s": result.runtime_s,
        "num_admitted": float(result.num_admitted),
        "num_rewarded": float(result.num_rewarded),
    }


def run_offline_sweep(algorithm_factories: Sequence[OfflineFactory],
                      x_values: Sequence[float],
                      make_config: ConfigFactory,
                      num_requests_of: Callable[[float], int],
                      num_seeds: int = 3,
                      x_label: str = "x") -> SweepResult:
    """Run a batch-algorithm sweep (Figs. 3 and 5).

    Args:
        algorithm_factories: one factory per algorithm.
        x_values: swept parameter values.
        make_config: (x, seed) -> configuration.
        num_requests_of: x -> workload size |R| for that point.
        num_seeds: replications per point.
        x_label: axis label for the result.

    Returns:
        A populated :class:`SweepResult`.
    """
    sweep = SweepResult(x_label)
    for x in x_values:
        for seed in range(num_seeds):
            config = make_config(x, seed)
            instance = ProblemInstance.build(config, seed=seed)
            for factory in algorithm_factories:
                algorithm = factory()
                workload = instance.new_workload(
                    num_requests=num_requests_of(x), seed=seed)
                result = run_offline(algorithm, instance, workload,
                                     seed=seed)
                sweep.add(RunRecord(algorithm=result.algorithm, x=x,
                                    seed=seed,
                                    metrics=_metrics_of(result)))
    return sweep


def run_online_sweep(policy_factories: Sequence[OnlineFactory],
                     x_values: Sequence[float],
                     make_config: ConfigFactory,
                     num_requests_of: Callable[[float], int],
                     horizon_slots: int,
                     num_seeds: int = 3,
                     x_label: str = "x") -> SweepResult:
    """Run an online-policy sweep (Figs. 4 and 6).

    Every policy sees the same arrival sequence per (x, seed); requests
    are re-drawn fresh for each policy so realization state never leaks
    between runs.
    """
    sweep = SweepResult(x_label)
    for x in x_values:
        for seed in range(num_seeds):
            config = make_config(x, seed)
            instance = ProblemInstance.build(config, seed=seed)
            for factory in policy_factories:
                policy = factory()
                workload = instance.new_workload(
                    num_requests=num_requests_of(x), seed=seed,
                    horizon_slots=horizon_slots)
                engine = OnlineEngine(
                    instance, workload, horizon_slots=horizon_slots,
                    slot_length_ms=config.online.slot_length_ms,
                    rng=seed)
                result = engine.run(policy)
                sweep.add(RunRecord(algorithm=result.algorithm, x=x,
                                    seed=seed,
                                    metrics=_metrics_of(result)))
    return sweep
