"""Drivers for Figures 3-6 of the paper.

Each function reproduces one figure's sweep and returns the
:class:`~repro.sim.results.SweepResult` holding every algorithm's
reward / latency / runtime series.  Pass ``scale=paper_scale()`` for
the full Section VI configuration or ``scale=bench_scale()`` (default)
for a fast run with the same qualitative shapes.

All drivers accept ``workers``: with ``workers > 1`` the sweep's
(algorithm x x x seed) grid executes on a process pool via
:mod:`~repro.experiments.executor`, returning records identical to the
serial run (``workers=0`` means one worker per CPU).  They also accept
``trace``: when True every run records a :mod:`repro.telemetry` trace
that comes back on its :class:`~repro.sim.results.RunRecord` (merge
with :func:`repro.telemetry.collect_sweep_trace`); metrics are
identical with tracing on or off.  ``journal`` likewise records a
decision audit journal per run (:mod:`repro.telemetry.audit`, merge
with :func:`repro.telemetry.audit.collect_sweep_journal`) without
changing any metric.  ``profile`` / ``profile_mem`` record a
performance-attribution digest + cProfile stats (and allocation
sites) per run (:mod:`repro.telemetry.profiling`, merge with
:func:`repro.telemetry.collect_sweep_profiles`) - again without
changing any metric.  ``progress`` (True or a
:class:`~repro.telemetry.ProgressReporter`) adds a live stderr
heartbeat while the sweep runs - observation only, records unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..baselines import (GreedyOffline, GreedyOnline, HeuKktOffline,
                         HeuKktOnline, OcorpOffline, OcorpOnline)
from ..core.appro import Appro
from ..core.dynamic_rr import DynamicRR
from ..core.heu import Heu
from ..sim.results import SweepResult
from .executor import ProgressKnob
from .runner import run_offline_sweep, run_online_sweep
from .settings import (ExperimentScale, base_config, bench_scale,
                       config_with_max_rate, config_with_stations)

#: Offline comparison set of Fig. 3 / Fig. 5.
OFFLINE_ALGORITHMS = (Appro, Heu, GreedyOffline, OcorpOffline,
                      HeuKktOffline)
#: Online comparison set of Fig. 4 / Fig. 6.
ONLINE_POLICIES = (DynamicRR, GreedyOnline, OcorpOnline, HeuKktOnline)


def figure3(scale: Optional[ExperimentScale] = None,
            workers: Optional[int] = 1,
            trace: bool = False,
            journal: bool = False,
            profile: bool = False,
            profile_mem: bool = False,
            progress: ProgressKnob = None) -> SweepResult:
    """Fig. 3: offline algorithms vs number of requests.

    Series: total reward (a), average latency (b), running time (c),
    for Appro, Heu, Greedy, OCORP, HeuKKT over |R| = 100..300
    (bench scale: 60..180).
    """
    scale = (scale or bench_scale()).validate()
    return run_offline_sweep(
        algorithm_factories=[cls for cls in OFFLINE_ALGORITHMS],
        x_values=list(scale.request_counts),
        make_config=lambda x, seed: base_config(seed),
        num_requests_of=lambda x: int(x),
        num_seeds=scale.num_seeds,
        x_label="num_requests",
        workers=workers,
        trace=trace,
        journal=journal,
        profile=profile,
        profile_mem=profile_mem,
        progress=progress,
    )


def figure4(scale: Optional[ExperimentScale] = None,
            workers: Optional[int] = 1,
            trace: bool = False,
            journal: bool = False,
            profile: bool = False,
            profile_mem: bool = False,
            progress: ProgressKnob = None) -> SweepResult:
    """Fig. 4: online algorithms vs number of requests.

    Series: total reward (a) and average latency (b) for DynamicRR,
    Greedy, OCORP, HeuKKT with slotted arrivals over the horizon.
    """
    scale = (scale or bench_scale()).validate()
    return run_online_sweep(
        policy_factories=[cls for cls in ONLINE_POLICIES],
        x_values=list(scale.request_counts),
        make_config=lambda x, seed: base_config(seed),
        num_requests_of=lambda x: int(x),
        horizon_slots=scale.horizon_slots,
        num_seeds=scale.num_seeds,
        x_label="num_requests",
        workers=workers,
        trace=trace,
        journal=journal,
        profile=profile,
        profile_mem=profile_mem,
        progress=progress,
    )


def figure5(scale: Optional[ExperimentScale] = None,
            include_online: bool = True,
            workers: Optional[int] = 1,
            trace: bool = False,
            journal: bool = False,
            profile: bool = False,
            profile_mem: bool = False,
            progress: ProgressKnob = None) -> SweepResult:
    """Fig. 5: all algorithms vs number of base stations.

    The paper plots Appro, Heu, DynamicRR, Greedy, OCORP and HeuKKT
    with |R| fixed (150) while |BS| varies from 10 to 50.  The offline
    algorithms run on the batch problem; DynamicRR runs on the slotted
    problem with the same per-seed workload size.
    """
    scale = (scale or bench_scale()).validate()
    sweep = run_offline_sweep(
        algorithm_factories=[cls for cls in OFFLINE_ALGORITHMS],
        x_values=list(scale.station_counts),
        make_config=lambda x, seed: config_with_stations(int(x), seed),
        num_requests_of=lambda x: scale.fig5_num_requests,
        num_seeds=scale.num_seeds,
        x_label="num_stations",
        workers=workers,
        trace=trace,
        journal=journal,
        profile=profile,
        profile_mem=profile_mem,
        progress=progress,
    )
    if include_online:
        online = run_online_sweep(
            policy_factories=[DynamicRR],
            x_values=list(scale.station_counts),
            make_config=lambda x, seed: config_with_stations(int(x), seed),
            num_requests_of=lambda x: scale.fig5_num_requests,
            horizon_slots=scale.horizon_slots,
            num_seeds=scale.num_seeds,
            x_label="num_stations",
            workers=workers,
            trace=trace,
            journal=journal,
            profile=profile,
            profile_mem=profile_mem,
            progress=progress,
        )
        sweep.extend(online.records)
    return sweep


def figure6(scale: Optional[ExperimentScale] = None,
            workers: Optional[int] = 1,
            trace: bool = False,
            journal: bool = False,
            profile: bool = False,
            profile_mem: bool = False,
            progress: ProgressKnob = None) -> SweepResult:
    """Fig. 6: online algorithms vs the maximum data rate of a request.

    The max rate sweeps 15..35 MB/s (support minimum scales along);
    both reward and latency should increase with the maximum rate.
    """
    scale = (scale or bench_scale()).validate()
    return run_online_sweep(
        policy_factories=[cls for cls in ONLINE_POLICIES],
        x_values=list(scale.max_rates_mbps),
        make_config=lambda x, seed: config_with_max_rate(float(x), seed),
        num_requests_of=lambda x: scale.fig6_num_requests,
        horizon_slots=scale.horizon_slots,
        num_seeds=scale.num_seeds,
        x_label="max_rate_mbps",
        workers=workers,
        trace=trace,
        journal=journal,
        profile=profile,
        profile_mem=profile_mem,
        progress=progress,
    )
