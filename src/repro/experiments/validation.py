"""Shape validation of sweep results.

The reproduction target is the *shape* of each figure: who wins, which
series are monotone, where curves saturate.  This module turns those
informal statements into named, reusable predicates, so the benchmark
suite, the CI, and a user validating a new parameter regime all check
the same definitions.

Each check returns a :class:`ShapeCheck` - a named pass/fail with the
numbers behind it - and :func:`validate_all` aggregates them into a
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import ConfigurationError
from ..sim.results import SweepResult


@dataclass(frozen=True)
class ShapeCheck:
    """One named shape assertion's outcome.

    Attributes:
        name: human-readable identifier.
        passed: whether the shape holds.
        detail: the numbers behind the verdict.
    """

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _series_sum(sweep: SweepResult, algorithm: str, metric: str) -> float:
    _xs, means, _stds = sweep.series(algorithm, metric)
    return float(sum(means))


def check_dominates(sweep: SweepResult, winner: str, loser: str,
                    metric: str = "total_reward",
                    margin: float = 1.0) -> ShapeCheck:
    """``winner``'s summed series exceeds ``margin`` x ``loser``'s."""
    w = _series_sum(sweep, winner, metric)
    l = _series_sum(sweep, loser, metric)
    passed = w > margin * l
    return ShapeCheck(
        name=f"{winner} > {margin:g}x {loser} on {metric}",
        passed=passed,
        detail=f"{winner}={w:.1f}, {loser}={l:.1f}")


def check_monotone(sweep: SweepResult, algorithm: str, metric: str,
                   increasing: bool = True,
                   tolerance: float = 0.05) -> ShapeCheck:
    """The mean series moves in one direction (with relative slack).

    Args:
        tolerance: allowed relative backtracking per step (noise).
    """
    if not 0 <= tolerance < 1:
        raise ConfigurationError(
            f"tolerance must lie in [0, 1), got {tolerance}")
    _xs, means, _stds = sweep.series(algorithm, metric)
    ok = True
    for a, b in zip(means, means[1:]):
        if increasing and b < a * (1.0 - tolerance):
            ok = False
        if not increasing and b > a * (1.0 + tolerance):
            ok = False
    direction = "increasing" if increasing else "decreasing"
    return ShapeCheck(
        name=f"{algorithm} {metric} {direction}",
        passed=ok,
        detail=f"series={['%.1f' % m for m in means]}")


def check_saturates(sweep: SweepResult, algorithm: str,
                    metric: str = "total_reward",
                    knee_gain: float = 0.5) -> ShapeCheck:
    """Marginal gains shrink along the sweep ("increase then stable").

    Passes when the last step's gain is at most ``knee_gain`` of the
    first step's gain (both measured on the mean series); degenerate
    short series pass trivially.
    """
    _xs, means, _stds = sweep.series(algorithm, metric)
    if len(means) < 3:
        return ShapeCheck(
            name=f"{algorithm} {metric} saturates",
            passed=True, detail="series too short; trivially true")
    first_gain = means[1] - means[0]
    last_gain = means[-1] - means[-2]
    passed = (first_gain <= 0) or (last_gain <= knee_gain * first_gain)
    return ShapeCheck(
        name=f"{algorithm} {metric} saturates",
        passed=passed,
        detail=f"first gain={first_gain:.1f}, last gain={last_gain:.1f}")


def check_winner_everywhere(sweep: SweepResult, algorithm: str,
                            metric: str = "total_reward",
                            higher_is_better: bool = True) -> ShapeCheck:
    """The algorithm wins the metric at every swept value."""
    losses = []
    for x in sweep.x_values():
        winner = sweep.winner_at(x, metric,
                                 higher_is_better=higher_is_better)
        if winner != algorithm:
            losses.append((x, winner))
    return ShapeCheck(
        name=f"{algorithm} best {metric} at every x",
        passed=not losses,
        detail=("wins everywhere" if not losses
                else f"beaten at {losses}"))


def validate_all(checks: Sequence[ShapeCheck]) -> str:
    """Render a report; raises AssertionError if any check failed.

    Returns:
        The multi-line report (also embedded in the AssertionError).
    """
    report = "\n".join(str(check) for check in checks)
    if any(not check.passed for check in checks):
        raise AssertionError("shape validation failed:\n" + report)
    return report
