"""Parameter presets for the Section VI experiments.

Two scales are provided:

* **paper scale** - the exact Section VI-A settings (20 stations,
  100-300 requests, horizon long enough for every stream); use for
  full reproductions via ``examples/`` or a custom driver.
* **bench scale** - the same topology with smaller sweeps and fewer
  replications so the pytest-benchmark suite finishes in minutes while
  preserving every qualitative shape (who wins, monotonicity,
  saturation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..config import SimulationConfig
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """One preset of sweep sizes and replication counts.

    Attributes:
        request_counts: the ``|R|`` sweep of Figs. 3 and 4.
        station_counts: the ``|BS|`` sweep of Fig. 5.
        max_rates_mbps: the max-data-rate sweep of Fig. 6.
        num_seeds: replications per point.
        horizon_slots: online monitoring period ``T``.
        fig5_num_requests: fixed ``|R|`` for the Fig. 5 sweep.
        fig6_num_requests: fixed ``|R|`` for the Fig. 6 sweep.  Larger
            than Fig. 5's because the swept rates (15-35 MB/s) sit
            below the default 30-50 MB/s support - extra requests keep
            the network at the saturated operating point the paper's
            comparisons assume.
    """

    request_counts: Tuple[int, ...]
    station_counts: Tuple[int, ...]
    max_rates_mbps: Tuple[float, ...]
    num_seeds: int
    horizon_slots: int
    fig5_num_requests: int
    fig6_num_requests: int = 150

    def validate(self) -> "ExperimentScale":
        """Raise on inconsistent presets; return self for chaining."""
        if not self.request_counts or min(self.request_counts) < 1:
            raise ConfigurationError(
                f"bad request_counts {self.request_counts}")
        if not self.station_counts or min(self.station_counts) < 1:
            raise ConfigurationError(
                f"bad station_counts {self.station_counts}")
        if not self.max_rates_mbps or min(self.max_rates_mbps) <= 0:
            raise ConfigurationError(
                f"bad max_rates_mbps {self.max_rates_mbps}")
        if self.num_seeds < 1:
            raise ConfigurationError(f"need >= 1 seed, {self.num_seeds}")
        if self.horizon_slots < 1:
            raise ConfigurationError(
                f"bad horizon {self.horizon_slots}")
        if self.fig5_num_requests < 1:
            raise ConfigurationError(
                f"bad fig5_num_requests {self.fig5_num_requests}")
        if self.fig6_num_requests < 1:
            raise ConfigurationError(
                f"bad fig6_num_requests {self.fig6_num_requests}")
        return self


def paper_scale() -> ExperimentScale:
    """The Section VI sweep sizes."""
    return ExperimentScale(
        request_counts=(100, 150, 200, 250, 300),
        station_counts=(10, 20, 30, 40, 50),
        max_rates_mbps=(15.0, 20.0, 25.0, 30.0, 35.0),
        num_seeds=5,
        horizon_slots=100,
        fig5_num_requests=150,
        fig6_num_requests=400,
    ).validate()


def bench_scale() -> ExperimentScale:
    """A fast preset preserving every qualitative shape."""
    return ExperimentScale(
        request_counts=(100, 150, 200),
        station_counts=(10, 20, 30),
        max_rates_mbps=(15.0, 25.0, 35.0),
        num_seeds=2,
        horizon_slots=60,
        fig5_num_requests=150,
        fig6_num_requests=220,
    ).validate()


def base_config(seed: int = 0) -> SimulationConfig:
    """The Section VI-A default configuration."""
    return SimulationConfig(seed=seed).validate()


def config_with_stations(num_stations: int,
                         seed: int = 0) -> SimulationConfig:
    """Default config with a different ``|BS|`` (Fig. 5 sweep)."""
    cfg = base_config(seed)
    return replace(cfg, network=replace(cfg.network,
                                        num_base_stations=num_stations)
                   ).validate()


def config_with_max_rate(max_rate_mbps: float,
                         seed: int = 0) -> SimulationConfig:
    """Default config with a different max data rate (Fig. 6 sweep).

    The paper varies the *maximum* data rate from 15 to 35 (keeping the
    spirit of its 30-50 MB/s default support, the minimum scales to
    60% of the maximum, preserving the support's relative width).
    """
    cfg = base_config(seed)
    lo = 0.6 * max_rate_mbps
    return replace(cfg, requests=replace(
        cfg.requests, data_rate_range_mbps=(lo, max_rate_mbps))
    ).validate()
