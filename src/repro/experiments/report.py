"""One-shot reproduction report generator.

``build_report`` runs the figure drivers (and optionally the ablation
studies) at a chosen scale and renders a self-contained Markdown
report in the style of the repository's ``EXPERIMENTS.md`` - tables per
figure panel plus the theorem-check summary - so a user can regenerate
the whole evidence base with one call::

    from repro.experiments.report import build_report
    text = build_report(bench_scale())
    Path("my_experiments.md").write_text(text)

or from the shell::

    python -m repro.experiments.report --scale bench --out report.md
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.results import SweepResult
from ..telemetry import (INVARIANTS, ProgressReporter, audit_records,
                         collect_sweep_journal, collect_sweep_profiles,
                         collect_sweep_trace, folded_from_stats,
                         manifest_from_sweeps, merge_memory,
                         merge_stats, render_digest,
                         render_memory_top, render_summary,
                         write_folded, write_jsonl)
from ..telemetry.ledger import append_ledger, write_bench
from .executor import ProgressKnob, resolve_progress, resolve_workers, \
    workers_type
from .ablations import (approximation_ratio_study, clairvoyant_study,
                        system_regret_study)
from .figures import figure3, figure4, figure5, figure6
from .settings import ExperimentScale, bench_scale, paper_scale

#: (figure id, driver, panels) in report order.  Drivers must accept
#: ``driver(scale, workers=N)`` like the built-in figure functions.
FigureSpec = Tuple[str, Callable[..., SweepResult],
                   Tuple[str, ...]]

DEFAULT_FIGURES: Tuple[FigureSpec, ...] = (
    ("3", figure3, ("total_reward", "avg_latency_ms", "runtime_s")),
    ("4", figure4, ("total_reward", "avg_latency_ms")),
    ("5", figure5, ("total_reward", "avg_latency_ms")),
    ("6", figure6, ("total_reward", "avg_latency_ms")),
)


def _markdown_table(sweep: SweepResult, metric: str) -> str:
    """One metric of a sweep as a Markdown table."""
    xs = sweep.x_values()
    header = "| algorithm | " + " | ".join(f"{x:g}" for x in xs) + " |"
    rule = "|---" * (len(xs) + 1) + "|"
    rows: List[str] = [header, rule]
    for algorithm in sweep.algorithms():
        xs_a, means, _ = sweep.series(algorithm, metric)
        by_x = dict(zip(xs_a, means))
        cells = [f"{by_x[x]:.1f}" if x in by_x else "-" for x in xs]
        rows.append(f"| {algorithm} | " + " | ".join(cells) + " |")
    return "\n".join(rows)


def render_figure_markdown(sweep: SweepResult, figure_id: str,
                           panels: Sequence[str]) -> str:
    """One figure as a Markdown section with a table per panel."""
    parts = [f"## Figure {figure_id} (x = {sweep.x_label})"]
    labels = "abcdefgh"
    for i, metric in enumerate(panels):
        parts.append(f"### ({labels[i]}) {metric}")
        parts.append(_markdown_table(sweep, metric))
    return "\n\n".join(parts)


def theorem_checks_markdown(fast: bool = True) -> str:
    """Run the theorem-check studies and render their summary."""
    if fast:
        ratio_mean, _ = approximation_ratio_study(num_requests=8,
                                                  seeds=(0, 1))
        regret = system_regret_study(thresholds=(200.0, 600.0, 1000.0),
                                     num_requests=80, horizon_slots=40)
        clair = clairvoyant_study(num_requests=80, horizon_slots=40)
    else:
        ratio_mean, _ = approximation_ratio_study()
        regret = system_regret_study()
        clair = clairvoyant_study()
    lines = [
        "## Theorem checks",
        "",
        "| claim | measured |",
        "|---|---|",
        f"| Thm. 1: Appro >= Opt/8 (single pass) | empirical mean "
        f"ratio {ratio_mean:.3f} (bound: 0.125) |",
        f"| Thm. 3: regret vs best fixed C^th | relative regret "
        f"{regret['relative_regret']:+.1%} (best arm "
        f"{regret['best_threshold']:.0f} MHz) |",
        f"| Competitive ratio vs clairvoyant bound | "
        f"{clair['competitive_ratio']:.3f} |",
    ]
    return "\n".join(lines)


#: Tracer value series that make up the bandit learning trajectory.
_BANDIT_SERIES = ("threshold_mhz", "surviving_arms",
                  "bandit_cumulative_reward")


def bandit_diagnostics_markdown(events: Sequence[Dict],
                                max_rows: int = 10) -> Optional[str]:
    """Render the DynamicRR learning trajectory from a merged trace.

    Scans the trace for the per-round value series DynamicRR records
    (threshold choice, surviving-arm count, cumulative settled reward)
    and renders the first traced run as a round-by-round table - the
    Theorem 3 regret curve made inspectable.  Returns None when no run
    recorded a bandit trajectory (e.g. an offline-only report).
    """
    runs: Dict[Tuple, Dict[str, List[float]]] = {}
    for event in events:
        if event.get("kind") != "value" \
                or event.get("name") not in _BANDIT_SERIES:
            continue
        key = (str(event.get("figure")), event.get("run"),
               event.get("algorithm"), event.get("x"),
               event.get("seed"))
        runs.setdefault(key, {})[event["name"]] = list(event["values"])
    complete = {key: series for key, series in runs.items()
                if "threshold_mhz" in series
                and "bandit_cumulative_reward" in series}
    if not complete:
        return None
    first_key = sorted(complete)[0]
    series = complete[first_key]
    figure, _run, algorithm, x, seed = first_key
    thresholds = series["threshold_mhz"]
    cumulative = series["bandit_cumulative_reward"]
    surviving = series.get("surviving_arms", [])
    rounds = min(len(thresholds), len(cumulative))
    step = max(1, -(-rounds // max_rows))  # ceil division
    indices = list(range(0, rounds, step))
    if indices and indices[-1] != rounds - 1:
        indices.append(rounds - 1)
    lines = [
        "## Bandit diagnostics (DynamicRR)",
        "",
        f"Traced learning runs: {len(complete)}.  Trajectory below: "
        f"figure {figure}, {algorithm}, x={x:g}, seed={seed} "
        f"({rounds} bandit rounds).",
        "",
        "| round | threshold (MHz) | surviving arms | "
        "cumulative reward |",
        "|---|---|---|---|",
    ]
    for i in indices:
        arms = f"{surviving[i]:.0f}" if i < len(surviving) else "-"
        lines.append(f"| {i + 1} | {thresholds[i]:.0f} | {arms} | "
                     f"{cumulative[i]:.1f} |")
    if surviving:
        lines.append("")
        lines.append(
            f"Final surviving arms: {surviving[-1]:.0f}; the "
            f"threshold trajectory converging while arms die off is "
            f"Theorem 3's sublinear regret at work.")
    return "\n".join(lines)


def invariant_audit_markdown(sweeps: Dict[str, SweepResult]
                             ) -> Optional[str]:
    """The "Invariant audit" section: every journaled run, checked.

    Replays each run's decision journal through a collect-mode
    :class:`~repro.telemetry.InvariantMonitor` (closed with the run's
    own metric row) and renders the per-invariant check counts plus
    any violations.  Returns None when no run carried a journal.
    """
    outcomes = {name: audit_records(sweep.records)
                for name, sweep in sweeps.items()}
    outcomes = {name: out for name, out in outcomes.items()
                if out.runs_audited}
    if not outcomes:
        return None
    runs = sum(out.runs_audited for out in outcomes.values())
    violations = [(name, tag, v) for name, out in outcomes.items()
                  for tag, v in out.violations]
    verdict = ("all invariants held" if not violations
               else f"{len(violations)} VIOLATION(S)")
    lines = [
        "## Invariant audit",
        "",
        f"Audited {runs} journaled run(s) across "
        f"{len(outcomes)} sweep(s): **{verdict}**.",
        "",
        "| invariant | checks | status |",
        "|---|---|---|",
    ]
    for name in INVARIANTS:
        checks = sum(out.checks[name] for out in outcomes.values())
        fails = sum(1 for _f, _t, v in violations
                    if v.invariant == name)
        status = ("FAIL" if fails else
                  "ok" if checks else "not exercised")
        lines.append(f"| {name} | {checks} | {status} |")
    for figure, tag, violation in violations:
        lines.append("")
        lines.append(f"- `{figure}` {tag}: {violation}")
    return "\n".join(lines)


def timing_markdown(timings: Sequence[Tuple[str, float, float]],
                    workers: int) -> str:
    """Render per-figure wall-clock (and speedup when measured).

    Args:
        timings: ``(figure id, elapsed seconds, serial seconds)`` rows;
            serial seconds is NaN when no baseline was measured.
        workers: worker processes the report ran with.
    """
    lines = ["## Wall-clock",
             "",
             f"Sweeps executed with `workers={workers}`.",
             "",
             "| figure | wall-clock (s) | serial (s) | speedup |",
             "|---|---|---|---|"]
    for figure_id, elapsed, serial in timings:
        if serial == serial:  # not NaN: a baseline was measured
            speedup = f"{serial / elapsed:.2f}x" if elapsed > 0 else "-"
            lines.append(f"| {figure_id} | {elapsed:.2f} | "
                         f"{serial:.2f} | {speedup} |")
        else:
            lines.append(f"| {figure_id} | {elapsed:.2f} | - | - |")
    total = sum(t[1] for t in timings)
    lines.append(f"| total | {total:.2f} | - | - |")
    return "\n".join(lines)


def build_report(scale: Optional[ExperimentScale] = None,
                 figures: Sequence[FigureSpec] = DEFAULT_FIGURES,
                 include_theorems: bool = True,
                 title: str = "Reproduction report",
                 workers: int = 1,
                 measure_speedup: bool = False,
                 trace: bool = False,
                 trace_sink: Optional[List[Dict]] = None,
                 journal: bool = False,
                 journal_sink: Optional[List[Dict]] = None,
                 profile: bool = False,
                 profile_mem: bool = False,
                 stats_sink: Optional[List] = None,
                 progress: ProgressKnob = None,
                 manifest_sink: Optional[List] = None) -> str:
    """Run the sweeps and return the full Markdown report.

    Args:
        scale: sweep preset (bench scale when None).
        figures: the figure drivers to run.
        include_theorems: append the theorem-check studies.
        title: report heading.
        workers: worker processes per sweep (1 = serial, 0 = one per
            CPU); records are identical for every value.
        measure_speedup: when True and ``workers != 1``, re-run each
            sweep serially and report the wall-clock speedup (doubles
            the runtime; results stay identical by construction).
        trace: run every sweep with :mod:`repro.telemetry` tracing and
            append "Telemetry" and "Bandit diagnostics" sections.
            Drivers must accept a ``trace`` kwarg (the built-in figure
            drivers do).
        trace_sink: optional list that receives the merged trace
            events (for JSONL export by the caller).
        journal: run every sweep with decision journaling
            (:mod:`repro.telemetry.audit`) and append the "Invariant
            audit" section - every journaled run replayed through the
            invariant monitor.  Drivers must accept a ``journal``
            kwarg (the built-in figure drivers do).
        journal_sink: optional list that receives the merged journal
            events (for JSONL export / trace-diff by the caller).
        profile: run every sweep with performance profiling
            (:mod:`repro.telemetry.profiling`) and append the "Profile
            digests" section - per-algorithm span attribution with the
            joined domain counters.  The report's manifest (when
            ``manifest_sink`` is given) carries the digests in its
            ``profiles`` section.  Drivers must accept a ``profile``
            kwarg (the built-in figure drivers do).
        profile_mem: additionally capture allocation sites per run and
            append the "Top allocation sites" table.
        stats_sink: optional list that receives the merged cProfile
            stats mapping (for ``.folded`` flamegraph export by the
            caller).
        progress: live stderr heartbeat while sweeps run (``True`` or
            a :class:`~repro.telemetry.ProgressReporter`); records are
            unchanged.
        manifest_sink: optional list that receives one
            :class:`~repro.telemetry.RunManifest` condensing every
            sweep of this report (for ledger/BENCH export by the
            caller).
    """
    scale = (scale or bench_scale()).validate()
    parts = [f"# {title}",
             "",
             f"Sweeps: |R| in {scale.request_counts}, |BS| in "
             f"{scale.station_counts}, max rate in "
             f"{scale.max_rates_mbps}; {scale.num_seeds} seed(s) per "
             f"point; online horizon {scale.horizon_slots} slots."]
    timings: List[Tuple[str, float, float]] = []
    trace_events: List[Dict] = []
    sweeps: Dict[str, SweepResult] = {}
    reporter = resolve_progress(progress)
    for figure_id, driver, panels in figures:
        if reporter is not None:
            reporter.set_phase(f"fig{figure_id}")
        driver_kwargs: Dict = {"workers": workers}
        if trace:
            driver_kwargs["trace"] = True
        if journal:
            driver_kwargs["journal"] = True
        if profile:
            driver_kwargs["profile"] = True
        if profile_mem:
            driver_kwargs["profile_mem"] = True
        if reporter is not None:
            # Only the knobs in use are passed, so third-party drivers
            # without the newer kwargs keep working untraced.
            driver_kwargs["progress"] = reporter
        start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        sweep = driver(scale, **driver_kwargs)
        elapsed = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
        sweeps[f"fig{figure_id}"] = sweep
        if trace:
            for event in collect_sweep_trace(sweep.records):
                event["figure"] = figure_id
                trace_events.append(event)
        if journal and journal_sink is not None:
            for event in collect_sweep_journal(sweep.records):
                event["figure"] = figure_id
                journal_sink.append(event)
        serial_s = float("nan")
        if measure_speedup and workers != 1:
            start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
            driver(scale, workers=1)
            serial_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
        timings.append((figure_id, elapsed, serial_s))
        parts.append(render_figure_markdown(sweep, figure_id, panels))
    parts.append(timing_markdown(timings, workers))
    if trace:
        parts.append("## Telemetry\n\n"
                     + render_summary(trace_events, markdown=True))
        diagnostics = bandit_diagnostics_markdown(trace_events)
        if diagnostics is not None:
            parts.append(diagnostics)
        if trace_sink is not None:
            trace_sink.extend(trace_events)
    if journal:
        audit = invariant_audit_markdown(sweeps)
        if audit is not None:
            parts.append(audit)
    if profile:
        digests = collect_sweep_profiles(sweeps)
        digest_parts = ["## Profile digests"]
        for name in sorted(digests):
            digest_parts.append(f"### {name}")
            digest_parts.append(render_digest(digests[name], top=10,
                                              markdown=True))
        parts.append("\n\n".join(digest_parts))
        if stats_sink is not None:
            stats_sink.append(merge_stats(
                record.profile_stats
                for sweep in sweeps.values()
                for record in sweep.records
                if record.profile_stats))
    if profile_mem:
        rows = merge_memory(
            record.profile_mem
            for sweep in sweeps.values()
            for record in sweep.records
            if record.profile_mem)
        parts.append("## Top allocation sites\n\n"
                     + render_memory_top(rows, markdown=True))
    if manifest_sink is not None and sweeps:
        manifest_sink.append(manifest_from_sweeps(
            "report", sweeps,
            config={"scale": scale,
                    "figures": [f[0] for f in figures]},
            workers=resolve_workers(workers),
            phases={f"fig{fid}": elapsed
                    for fid, elapsed, _serial in timings},
            extra={"title": title}))
    if include_theorems:
        parts.append(theorem_checks_markdown(fast=True))
    return "\n\n".join(parts) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.report``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Generate a Markdown reproduction report.")
    parser.add_argument("--scale", choices=["bench", "paper"],
                        default="bench")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the report here (default: stdout)")
    parser.add_argument("--no-theorems", action="store_true",
                        help="skip the theorem-check studies")
    parser.add_argument("--workers", type=workers_type, default=1,
                        metavar="N",
                        help="worker processes per sweep (1 = serial, "
                             "0 = one per CPU)")
    parser.add_argument("--speedup", action="store_true",
                        help="also run each sweep serially and report "
                             "the wall-clock speedup")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="trace every run, write the merged JSONL "
                             "here, and append Telemetry + Bandit "
                             "diagnostics sections")
    parser.add_argument("--trace-summary", action="store_true",
                        help="append the Telemetry section without "
                             "writing a JSONL file")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="journal every decision, write the merged "
                             "JSONL here, and append the Invariant "
                             "audit section")
    parser.add_argument("--audit", action="store_true",
                        help="append the Invariant audit section "
                             "without writing a journal file")
    parser.add_argument("--profile", action="store_true",
                        help="profile every run and append the "
                             "Profile digests section (records are "
                             "unchanged)")
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="write a collapsed-stack flamegraph "
                             "(.folded) of the merged cProfile stats "
                             "(implies --profile)")
    parser.add_argument("--profile-mem", action="store_true",
                        help="additionally capture allocation sites "
                             "and append the Top allocation sites "
                             "table")
    parser.add_argument("--progress", action="store_true",
                        help="live stderr heartbeat while sweeps run")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="append this report's RunManifest to a "
                             "JSONL run ledger")
    parser.add_argument("--bench-out", default=None, metavar="PATH",
                        help="export this report's RunManifest as a "
                             "BENCH_<name>.json snapshot")
    args = parser.parse_args(argv)
    scale = paper_scale() if args.scale == "paper" else bench_scale()
    tracing = bool(args.trace or args.trace_summary)
    journaling = bool(args.journal or args.audit)
    profiling = bool(args.profile or args.profile_out)
    trace_sink: List[Dict] = []
    journal_sink: List[Dict] = []
    manifest_sink: List = []
    stats_sink: List = []
    text = build_report(scale,
                        include_theorems=not args.no_theorems,
                        workers=args.workers,
                        measure_speedup=args.speedup,
                        trace=tracing,
                        trace_sink=trace_sink,
                        journal=journaling,
                        journal_sink=journal_sink,
                        profile=profiling,
                        profile_mem=args.profile_mem,
                        stats_sink=stats_sink
                        if args.profile_out else None,
                        progress=ProgressReporter() if args.progress
                        else None,
                        manifest_sink=manifest_sink
                        if (args.ledger or args.bench_out) else None)
    if args.trace:
        path = write_jsonl(args.trace, trace_sink)
        print(f"wrote trace ({len(trace_sink)} events) to {path}")
    if args.journal:
        path = write_jsonl(args.journal, journal_sink)
        print(f"wrote journal ({len(journal_sink)} events) to {path}")
    if args.profile_out and stats_sink:
        path = write_folded(args.profile_out,
                            folded_from_stats(stats_sink[0]))
        print(f"wrote collapsed stacks to {path}")
    if manifest_sink:
        manifest = manifest_sink[0]
        if args.ledger:
            path = append_ledger(args.ledger, manifest)
            print(f"appended manifest {manifest.name!r} to {path}")
        if args.bench_out:
            path = write_bench(args.bench_out, manifest)
            print(f"wrote manifest {manifest.name!r} to {path}")
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
