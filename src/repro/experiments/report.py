"""One-shot reproduction report generator.

``build_report`` runs the figure drivers (and optionally the ablation
studies) at a chosen scale and renders a self-contained Markdown
report in the style of the repository's ``EXPERIMENTS.md`` - tables per
figure panel plus the theorem-check summary - so a user can regenerate
the whole evidence base with one call::

    from repro.experiments.report import build_report
    text = build_report(bench_scale())
    Path("my_experiments.md").write_text(text)

or from the shell::

    python -m repro.experiments.report --scale bench --out report.md
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.results import SweepResult
from ..telemetry import collect_sweep_trace, render_summary, write_jsonl
from .executor import workers_type
from .ablations import (approximation_ratio_study, clairvoyant_study,
                        system_regret_study)
from .figures import figure3, figure4, figure5, figure6
from .settings import ExperimentScale, bench_scale, paper_scale

#: (figure id, driver, panels) in report order.  Drivers must accept
#: ``driver(scale, workers=N)`` like the built-in figure functions.
FigureSpec = Tuple[str, Callable[..., SweepResult],
                   Tuple[str, ...]]

DEFAULT_FIGURES: Tuple[FigureSpec, ...] = (
    ("3", figure3, ("total_reward", "avg_latency_ms", "runtime_s")),
    ("4", figure4, ("total_reward", "avg_latency_ms")),
    ("5", figure5, ("total_reward", "avg_latency_ms")),
    ("6", figure6, ("total_reward", "avg_latency_ms")),
)


def _markdown_table(sweep: SweepResult, metric: str) -> str:
    """One metric of a sweep as a Markdown table."""
    xs = sweep.x_values()
    header = "| algorithm | " + " | ".join(f"{x:g}" for x in xs) + " |"
    rule = "|---" * (len(xs) + 1) + "|"
    rows: List[str] = [header, rule]
    for algorithm in sweep.algorithms():
        xs_a, means, _ = sweep.series(algorithm, metric)
        by_x = dict(zip(xs_a, means))
        cells = [f"{by_x[x]:.1f}" if x in by_x else "-" for x in xs]
        rows.append(f"| {algorithm} | " + " | ".join(cells) + " |")
    return "\n".join(rows)


def render_figure_markdown(sweep: SweepResult, figure_id: str,
                           panels: Sequence[str]) -> str:
    """One figure as a Markdown section with a table per panel."""
    parts = [f"## Figure {figure_id} (x = {sweep.x_label})"]
    labels = "abcdefgh"
    for i, metric in enumerate(panels):
        parts.append(f"### ({labels[i]}) {metric}")
        parts.append(_markdown_table(sweep, metric))
    return "\n\n".join(parts)


def theorem_checks_markdown(fast: bool = True) -> str:
    """Run the theorem-check studies and render their summary."""
    if fast:
        ratio_mean, _ = approximation_ratio_study(num_requests=8,
                                                  seeds=(0, 1))
        regret = system_regret_study(thresholds=(200.0, 600.0, 1000.0),
                                     num_requests=80, horizon_slots=40)
        clair = clairvoyant_study(num_requests=80, horizon_slots=40)
    else:
        ratio_mean, _ = approximation_ratio_study()
        regret = system_regret_study()
        clair = clairvoyant_study()
    lines = [
        "## Theorem checks",
        "",
        "| claim | measured |",
        "|---|---|",
        f"| Thm. 1: Appro >= Opt/8 (single pass) | empirical mean "
        f"ratio {ratio_mean:.3f} (bound: 0.125) |",
        f"| Thm. 3: regret vs best fixed C^th | relative regret "
        f"{regret['relative_regret']:+.1%} (best arm "
        f"{regret['best_threshold']:.0f} MHz) |",
        f"| Competitive ratio vs clairvoyant bound | "
        f"{clair['competitive_ratio']:.3f} |",
    ]
    return "\n".join(lines)


def timing_markdown(timings: Sequence[Tuple[str, float, float]],
                    workers: int) -> str:
    """Render per-figure wall-clock (and speedup when measured).

    Args:
        timings: ``(figure id, elapsed seconds, serial seconds)`` rows;
            serial seconds is NaN when no baseline was measured.
        workers: worker processes the report ran with.
    """
    lines = ["## Wall-clock",
             "",
             f"Sweeps executed with `workers={workers}`.",
             "",
             "| figure | wall-clock (s) | serial (s) | speedup |",
             "|---|---|---|---|"]
    for figure_id, elapsed, serial in timings:
        if serial == serial:  # not NaN: a baseline was measured
            speedup = f"{serial / elapsed:.2f}x" if elapsed > 0 else "-"
            lines.append(f"| {figure_id} | {elapsed:.2f} | "
                         f"{serial:.2f} | {speedup} |")
        else:
            lines.append(f"| {figure_id} | {elapsed:.2f} | - | - |")
    total = sum(t[1] for t in timings)
    lines.append(f"| total | {total:.2f} | - | - |")
    return "\n".join(lines)


def build_report(scale: Optional[ExperimentScale] = None,
                 figures: Sequence[FigureSpec] = DEFAULT_FIGURES,
                 include_theorems: bool = True,
                 title: str = "Reproduction report",
                 workers: int = 1,
                 measure_speedup: bool = False,
                 trace: bool = False,
                 trace_sink: Optional[List[Dict]] = None) -> str:
    """Run the sweeps and return the full Markdown report.

    Args:
        scale: sweep preset (bench scale when None).
        figures: the figure drivers to run.
        include_theorems: append the theorem-check studies.
        title: report heading.
        workers: worker processes per sweep (1 = serial, 0 = one per
            CPU); records are identical for every value.
        measure_speedup: when True and ``workers != 1``, re-run each
            sweep serially and report the wall-clock speedup (doubles
            the runtime; results stay identical by construction).
        trace: run every sweep with :mod:`repro.telemetry` tracing and
            append a "Telemetry" section breaking down where the
            milliseconds went.  Drivers must accept a ``trace`` kwarg
            (the built-in figure drivers do).
        trace_sink: optional list that receives the merged trace
            events (for JSONL export by the caller).
    """
    scale = (scale or bench_scale()).validate()
    parts = [f"# {title}",
             "",
             f"Sweeps: |R| in {scale.request_counts}, |BS| in "
             f"{scale.station_counts}, max rate in "
             f"{scale.max_rates_mbps}; {scale.num_seeds} seed(s) per "
             f"point; online horizon {scale.horizon_slots} slots."]
    timings: List[Tuple[str, float, float]] = []
    trace_events: List[Dict] = []
    for figure_id, driver, panels in figures:
        start = time.perf_counter()
        if trace:
            sweep = driver(scale, workers=workers, trace=True)
        else:
            sweep = driver(scale, workers=workers)
        elapsed = time.perf_counter() - start
        if trace:
            for event in collect_sweep_trace(sweep.records):
                event["figure"] = figure_id
                trace_events.append(event)
        serial_s = float("nan")
        if measure_speedup and workers != 1:
            start = time.perf_counter()
            driver(scale, workers=1)
            serial_s = time.perf_counter() - start
        timings.append((figure_id, elapsed, serial_s))
        parts.append(render_figure_markdown(sweep, figure_id, panels))
    parts.append(timing_markdown(timings, workers))
    if trace:
        parts.append("## Telemetry\n\n"
                     + render_summary(trace_events, markdown=True))
        if trace_sink is not None:
            trace_sink.extend(trace_events)
    if include_theorems:
        parts.append(theorem_checks_markdown(fast=True))
    return "\n\n".join(parts) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.report``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Generate a Markdown reproduction report.")
    parser.add_argument("--scale", choices=["bench", "paper"],
                        default="bench")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the report here (default: stdout)")
    parser.add_argument("--no-theorems", action="store_true",
                        help="skip the theorem-check studies")
    parser.add_argument("--workers", type=workers_type, default=1,
                        metavar="N",
                        help="worker processes per sweep (1 = serial, "
                             "0 = one per CPU)")
    parser.add_argument("--speedup", action="store_true",
                        help="also run each sweep serially and report "
                             "the wall-clock speedup")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="trace every run, write the merged JSONL "
                             "here, and append a Telemetry section")
    parser.add_argument("--trace-summary", action="store_true",
                        help="append the Telemetry section without "
                             "writing a JSONL file")
    args = parser.parse_args(argv)
    scale = paper_scale() if args.scale == "paper" else bench_scale()
    tracing = bool(args.trace or args.trace_summary)
    trace_sink: List[Dict] = []
    text = build_report(scale,
                        include_theorems=not args.no_theorems,
                        workers=args.workers,
                        measure_speedup=args.speedup,
                        trace=tracing,
                        trace_sink=trace_sink)
    if args.trace:
        path = write_jsonl(args.trace, trace_sink)
        print(f"wrote trace ({len(trace_sink)} events) to {path}")
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
