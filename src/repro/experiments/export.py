"""CSV export of sweep results.

Writes the long-form records (one row per algorithm x swept value x
seed) and the wide-form mean tables the figures plot, so downstream
plotting (matplotlib, gnuplot, a spreadsheet) needs no Python.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

from ..exceptions import ConfigurationError
from ..sim.results import SweepResult

PathLike = Union[str, Path]

#: Metrics exported by default (the figures' panels plus diagnostics).
DEFAULT_METRICS = ("total_reward", "avg_latency_ms", "runtime_s",
                   "num_admitted", "num_rewarded")


def write_records_csv(sweep: SweepResult, path: PathLike) -> Path:
    """Write the long-form records: one row per (algorithm, x, seed).

    Returns the written path.
    """
    path = Path(path)
    metrics: List[str] = []
    for record in sweep.records:
        for name in record.metrics:
            if name not in metrics:
                metrics.append(name)
    if not sweep.records:
        raise ConfigurationError("nothing to export: sweep is empty")
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["algorithm", sweep.x_label, "seed"] + metrics)
        for record in sweep.records:
            writer.writerow(
                [record.algorithm, record.x, record.seed]
                + [record.metrics.get(name, "") for name in metrics])
    return path


def write_series_csv(sweep: SweepResult, metric: str,
                     path: PathLike) -> Path:
    """Write one metric's wide-form mean table (one row per algorithm).

    Columns are the swept values; cells are means over seeds (blank
    when an algorithm has no record at that value).
    """
    path = Path(path)
    xs = sweep.x_values()
    if not xs:
        raise ConfigurationError("nothing to export: sweep is empty")
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["algorithm"] + [str(x) for x in xs])
        for algorithm in sweep.algorithms():
            xs_a, means, _stds = sweep.series(algorithm, metric)
            by_x = dict(zip(xs_a, means))
            writer.writerow([algorithm]
                            + [by_x.get(x, "") for x in xs])
    return path


def export_figure(sweep: SweepResult, out_dir: PathLike,
                  figure_name: str,
                  metrics: Iterable[str] = DEFAULT_METRICS
                  ) -> List[Path]:
    """Export one figure's records plus a wide table per metric.

    Args:
        sweep: the experiment results.
        out_dir: directory to create files in (created if missing).
        figure_name: filename stem, e.g. ``"fig3"``.
        metrics: which metric tables to write.

    Returns:
        The written paths (records first).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = [write_records_csv(sweep,
                                 out_dir / f"{figure_name}_records.csv")]
    available = {name for record in sweep.records
                 for name in record.metrics}
    for metric in metrics:
        if metric in available:
            written.append(write_series_csv(
                sweep, metric, out_dir / f"{figure_name}_{metric}.csv"))
    return written
