"""Library-level ablation drivers.

The benchmark suite prints these studies; exposing them as functions
makes them scriptable (e.g. from a notebook or the CLI) and testable.
Each driver returns plain data - dictionaries keyed by the ablated
value - leaving presentation to the caller.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from ..config import SimulationConfig
from ..core.appro import Appro
from ..core.clairvoyant import clairvoyant_bound, competitive_ratio
from ..core.dynamic_rr import DynamicRR
from ..core.fixed_threshold import best_fixed_threshold
from ..core.ilp_rm import solve_ilp_rm
from ..core.instance import ProblemInstance
from ..exceptions import ConfigurationError
from ..sim.engine import run_offline
from ..sim.online_engine import OnlineEngine


def rounding_scale_study(scales: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
                         num_requests: int = 120,
                         seeds: Sequence[int] = (0, 1),
                         max_rounds: int = 1) -> Dict[float, float]:
    """Total Appro reward per rounding scale (single pass by default).

    The paper's scale is 4 (it buys Lemma 2's bound); smaller scales
    assign more aggressively per pass.
    """
    if not scales:
        raise ConfigurationError("need at least one scale")
    out: Dict[float, float] = {}
    for scale in scales:
        total = 0.0
        for seed in seeds:
            instance = ProblemInstance.build(
                SimulationConfig(seed=seed), seed=seed)
            workload = instance.new_workload(num_requests, seed=seed)
            algo = Appro(rounding_scale=scale, max_rounds=max_rounds)
            total += run_offline(algo, instance, workload,
                                 seed=seed).total_reward
        out[float(scale)] = total
    return out


def slot_size_study(slot_sizes: Sequence[float] = (500.0, 1000.0,
                                                   1500.0),
                    num_requests: int = 120,
                    seeds: Sequence[int] = (0, 1)) -> Dict[float, float]:
    """Total Appro reward per resource-slot size ``C_l``."""
    if not slot_sizes:
        raise ConfigurationError("need at least one slot size")
    out: Dict[float, float] = {}
    for slot_size in slot_sizes:
        total = 0.0
        for seed in seeds:
            config = SimulationConfig(seed=seed)
            config = replace(config, network=replace(
                config.network, slot_size_mhz=slot_size)).validate()
            instance = ProblemInstance.build(config, seed=seed)
            workload = instance.new_workload(num_requests, seed=seed)
            total += run_offline(Appro(), instance, workload,
                                 seed=seed).total_reward
        out[float(slot_size)] = total
    return out


def approximation_ratio_study(num_requests: int = 10,
                              seeds: Sequence[int] = tuple(range(6)),
                              max_rounds: int = 1,
                              num_stations: int = 6
                              ) -> Tuple[float, Dict[int, float]]:
    """Empirical Appro / ILP-RM optimum ratios (Theorem 1).

    Returns:
        ``(mean_ratio, ratios_by_seed)``.
    """
    ratios: Dict[int, float] = {}
    for seed in seeds:
        config = SimulationConfig(seed=seed)
        config = replace(config, network=replace(
            config.network, num_base_stations=num_stations)).validate()
        instance = ProblemInstance.build(config, seed=seed)
        workload = instance.new_workload(num_requests, seed=seed)
        opt, _ = solve_ilp_rm(instance, workload)
        if opt.objective <= 0:
            continue
        workload = instance.new_workload(num_requests, seed=seed)
        result = run_offline(Appro(max_rounds=max_rounds), instance,
                             workload, seed=seed)
        ratios[seed] = result.total_reward / opt.objective
    if not ratios:
        raise ConfigurationError("every instance had zero optimum")
    mean = sum(ratios.values()) / len(ratios)
    return mean, ratios


def bandit_policy_study(policies: Sequence[str] = ("se", "ucb1",
                                                   "egreedy"),
                        num_requests: int = 250,
                        horizon_slots: int = 80,
                        seeds: Sequence[int] = (0, 1)
                        ) -> Dict[str, float]:
    """Total DynamicRR reward per threshold-learner choice."""
    out: Dict[str, float] = {}
    for name in policies:
        total = 0.0
        for seed in seeds:
            instance = ProblemInstance.build(
                SimulationConfig(seed=seed), seed=seed)
            workload = instance.new_workload(
                num_requests, seed=seed, horizon_slots=horizon_slots)
            engine = OnlineEngine(instance, workload,
                                  horizon_slots=horizon_slots, rng=seed)
            policy = DynamicRR(bandit_policy=name, rng=seed)
            total += engine.run(policy).total_reward
        out[name] = total
    return out


def system_regret_study(thresholds: Sequence[float] = (200.0, 400.0,
                                                       600.0, 800.0,
                                                       1000.0),
                        num_requests: int = 250,
                        horizon_slots: int = 80,
                        seed: int = 0) -> Dict[str, float]:
    """End-to-end Theorem 3 measurement for one seed.

    Returns a dict with ``best_threshold``, ``best_fixed_reward``,
    ``dynamic_reward``, and ``relative_regret``.
    """
    instance = ProblemInstance.build(SimulationConfig(seed=seed),
                                     seed=seed)

    def workload():
        return instance.new_workload(num_requests, seed=seed,
                                     horizon_slots=horizon_slots)

    best_arm, best_reward, _rewards = best_fixed_threshold(
        instance, workload, thresholds, horizon_slots=horizon_slots,
        rng_seed=seed)
    engine = OnlineEngine(instance, workload(),
                          horizon_slots=horizon_slots, rng=seed)
    dynamic = engine.run(DynamicRR(rng=seed)).total_reward
    regret = ((best_reward - dynamic) / best_reward
              if best_reward > 0 else 0.0)
    return {
        "best_threshold": best_arm,
        "best_fixed_reward": best_reward,
        "dynamic_reward": dynamic,
        "relative_regret": regret,
    }


def clairvoyant_study(num_requests: int = 250,
                      horizon_slots: int = 80,
                      seed: int = 0,
                      policy_factory=DynamicRR) -> Dict[str, float]:
    """Competitive ratio of one online policy vs the pooled bound."""
    instance = ProblemInstance.build(SimulationConfig(seed=seed),
                                     seed=seed)
    workload = instance.new_workload(num_requests, seed=seed,
                                     horizon_slots=horizon_slots)
    engine = OnlineEngine(instance, workload,
                          horizon_slots=horizon_slots, rng=seed)
    try:
        policy = policy_factory(rng=seed)
    except TypeError:
        policy = policy_factory()
    result = engine.run(policy)
    bound = clairvoyant_bound(instance, workload,
                              horizon_slots=horizon_slots, rng=seed)
    return {
        "online_reward": result.total_reward,
        "clairvoyant_bound": bound.upper_bound,
        "competitive_ratio": competitive_ratio(result.total_reward,
                                               bound),
        "bound_peak_utilization": bound.peak_utilization,
    }
