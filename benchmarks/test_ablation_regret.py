"""Ablation: regret of the threshold bandit (Theorem 3).

Two studies:

1. **Synthetic Lipschitz curve** - the successive-elimination Lipschitz
   bandit is run on a known reward curve; its measured regret must stay
   below the Theorem 3 shape ``C * (sqrt(kappa T log T) + T eta eps)``
   and its regret curve must flatten (sublinearity).
2. **kappa sweep** - the discretization trade-off of Theorem 3: too few
   arms pay discretization error, too many pay exploration; print the
   regret for each kappa.
"""

import math

import numpy as np

from repro.bandits.lipschitz import LipschitzBandit
from repro.bandits.regret import RegretTracker

HORIZON = 2000
ETA = 0.08  # Lipschitz constant of the synthetic curve below
OPTIMUM = 7.0


def curve_mean(value: float) -> float:
    """A Lipschitz reward curve on [0, 10] peaking at OPTIMUM."""
    return max(0.0, 1.0 - ETA * abs(value - OPTIMUM))


def run_bandit(kappa: int, seed: int) -> RegretTracker:
    rng = np.random.default_rng(seed)
    bandit = LipschitzBandit(0.0, 10.0, num_arms=kappa, horizon=HORIZON,
                             explore_fraction=0.5, confidence_scale=0.3)
    tracker = RegretTracker(oracle_mean=curve_mean(OPTIMUM))
    for _ in range(HORIZON):
        value = bandit.select_value()
        reward = float(np.clip(curve_mean(value)
                               + rng.normal(0.0, 0.05), 0.0, 1.0))
        bandit.record(reward)
        tracker.record(bandit.grid.nearest_arm(value), reward)
    return tracker


def test_regret_sublinear_and_below_theorem3_shape(benchmark):
    out = {}

    def run():
        out["trackers"] = [run_bandit(kappa=11, seed=s)
                           for s in range(3)]
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    regrets = [t.cumulative_regret() for t in out["trackers"]]
    mean_regret = float(np.mean(regrets))
    epsilon = 10.0 / (11 - 1)
    bound_shape = (math.sqrt(11 * HORIZON * math.log(HORIZON))
                   + HORIZON * ETA * epsilon)
    print()
    print("Theorem 3 regret study (synthetic Lipschitz curve)")
    print(f"  measured regret (mean of 3 runs): {mean_regret:.1f}")
    print(f"  bound shape sqrt(kTlogT)+T*eta*eps: {bound_shape:.1f}")

    # The bound is stated up to a constant; require the measured regret
    # to stay within a small multiple of the shape, and to be sublinear.
    assert mean_regret <= 3.0 * bound_shape
    sub = sum(t.is_sublinear(window=200) for t in out["trackers"])
    assert sub >= 2


def test_regret_kappa_sweep(benchmark):
    out = {}

    def run():
        out["rows"] = [
            (kappa, float(np.mean([
                run_bandit(kappa, seed=s).cumulative_regret()
                for s in range(2)])))
            for kappa in (3, 6, 11, 21)
        ]
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("kappa sweep: discretization vs exploration")
    for kappa, regret in out["rows"]:
        print(f"  kappa={kappa:3d}  regret={regret:8.1f}")
    regrets = dict(out["rows"])
    # The coarsest grid pays discretization error: with kappa=3 the
    # best arm can sit eps/2 = 1.67 away from the optimum, costing
    # ~ T * eta * 1.67 / 2 on average - it should not beat the finest
    # grid by much, and the sweep should show a finite trade-off.
    assert regrets[3] > 0.0
    assert min(regrets.values()) == min(regrets[k] for k in (6, 11, 21))
