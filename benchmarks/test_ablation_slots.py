"""Ablation: the design constants of the LP rounding.

1. **Rounding scale** - the paper rounds with probability ``y/4``;
   the 4 buys Lemma 2's 1/2 failure bound.  Sweeping the scale shows
   the admission/feasibility trade-off (smaller scale = more tentative
   assignments but more prefix-test rejections).
2. **Slot size C_l** - the paper uses 1000 MHz; smaller slots track
   occupancy more finely (more admission opportunities), bigger slots
   are coarser.
"""

from dataclasses import replace


from repro.config import SimulationConfig
from repro.core.appro import Appro
from repro.core.instance import ProblemInstance
from repro.sim.engine import run_offline

SEEDS = (0, 1)
NUM_REQUESTS = 120


def reward_with(rounding_scale=4.0, slot_size=1000.0,
                max_rounds=1) -> float:
    total = 0.0
    for seed in SEEDS:
        config = SimulationConfig(seed=seed)
        config = replace(config, network=replace(
            config.network, slot_size_mhz=slot_size)).validate()
        instance = ProblemInstance.build(config, seed=seed)
        workload = instance.new_workload(NUM_REQUESTS, seed=seed)
        algo = Appro(rounding_scale=rounding_scale,
                     max_rounds=max_rounds)
        total += run_offline(algo, instance, workload,
                             seed=seed).total_reward
    return total


def test_rounding_scale_sweep(benchmark):
    out = {}

    def run():
        out["rows"] = [(scale, reward_with(rounding_scale=scale))
                       for scale in (1.0, 2.0, 4.0, 8.0)]
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Rounding scale sweep (single pass, total reward over "
          f"{len(SEEDS)} seeds)")
    for scale, reward in out["rows"]:
        print(f"  y/{scale:<4g} reward={reward:10.1f}")
    rewards = dict(out["rows"])
    # A single y/8 pass assigns half as much as y/4: it must earn less.
    assert rewards[8.0] < rewards[1.0]
    assert all(r > 0 for r in rewards.values())


def test_slot_size_sweep(benchmark):
    out = {}

    def run():
        out["rows"] = [(size, reward_with(slot_size=size,
                                          max_rounds=24))
                       for size in (500.0, 1000.0, 1500.0)]
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Slot size C_l sweep (repeated passes, total reward over "
          f"{len(SEEDS)} seeds)")
    for size, reward in out["rows"]:
        print(f"  C_l={size:6.0f} MHz  reward={reward:10.1f}")
    rewards = dict(out["rows"])
    # Finer slots expose more admission opportunities than very coarse
    # ones on the same capacity.
    assert rewards[500.0] >= 0.8 * rewards[1500.0]
