"""Ablation: empirical approximation ratio of Appro (Theorem 1).

Compares Appro's reward against the exact ILP-RM optimum on small
instances, for both the literally analyzed single rounding pass and
the evaluation's repeated-pass mode.  Theorem 1 guarantees an expected
ratio of at least 1/8 for the single pass; repetition only helps.
"""


from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig)
from repro.core.appro import Appro
from repro.core.ilp_rm import solve_ilp_rm
from repro.core.instance import ProblemInstance
from repro.sim.engine import run_offline

NUM_SEEDS = 6
NUM_REQUESTS = 10


def build_instance(seed):
    config = SimulationConfig(
        network=NetworkConfig(num_base_stations=6),
        requests=RequestConfig(num_requests=NUM_REQUESTS),
        online=OnlineConfig(),
        seed=seed)
    return ProblemInstance.build(config, seed=seed)


def measure_ratios(max_rounds):
    ratios = []
    for seed in range(NUM_SEEDS):
        instance = build_instance(seed)
        workload = instance.new_workload(NUM_REQUESTS, seed=seed)
        opt, _ = solve_ilp_rm(instance, workload)
        if opt.objective <= 0:
            continue
        workload = instance.new_workload(NUM_REQUESTS, seed=seed)
        result = run_offline(Appro(max_rounds=max_rounds), instance,
                             workload, seed=seed)
        ratios.append(result.total_reward / opt.objective)
    return ratios


def test_appro_ratio_single_vs_multi_round(benchmark):
    out = {}

    def run():
        out["single"] = measure_ratios(max_rounds=1)
        out["multi"] = measure_ratios(max_rounds=24)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    single = sum(out["single"]) / len(out["single"])
    multi = sum(out["multi"]) / len(out["multi"])
    print()
    print("Appro / ILP-RM optimum (empirical approximation ratio)")
    print(f"  single rounding pass : {single:.3f}  (Theorem 1 bound: "
          f"0.125)")
    print(f"  repeated passes      : {multi:.3f}")

    # Theorem 1: expected ratio >= 1/8 (empirical mean, small margin).
    assert single >= 0.125
    # Repetition should not hurt.
    assert multi >= single * 0.95
    # Sanity: close to the optimum on average.  Individual seeds may
    # exceed 1 slightly - ILP-RM maximizes *expected* reward while the
    # measured total is a *realized* reward.
    assert multi <= 1.15
