"""Figure 5: all algorithms vs number of base stations (|R| fixed).

Panels: (a) total reward, (b) average latency.

Paper shapes asserted here:

* Total reward increases with |BS| (more stations host more requests,
  and requests reach higher-reward placements).
* Average latency decreases (or at least does not increase) with |BS|
  for the proposed algorithms (closer, faster placements become
  available).
"""

import time


from conftest import (bench_workers, latency_series, record_bench,
                      reward_series, series_sum)
from repro.experiments import bench_scale, figure5, render_figure

_CACHE = {}


def run_figure5():
    if "sweep" not in _CACHE:
        started = time.perf_counter()
        _CACHE["sweep"] = figure5(bench_scale(),
                                  workers=bench_workers())
        record_bench("bench-fig5", {"fig5": _CACHE["sweep"]},
                     phases={"fig5": time.perf_counter() - started})
    return _CACHE["sweep"]


def test_fig5a_total_reward(benchmark):
    sweep = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("total_reward",), "Figure 5"))

    for algorithm in ("Appro", "Heu", "DynamicRR"):
        series = reward_series(sweep, algorithm)
        assert series[-1] > series[0], (
            f"{algorithm} reward should grow with |BS|: {series}")
    # The proposed algorithms keep their lead over the local baselines.
    assert series_sum(sweep, "Heu") > series_sum(sweep, "OCORP")
    assert series_sum(sweep, "Heu") > series_sum(sweep, "Greedy")


def test_fig5b_avg_latency(benchmark):
    sweep = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("avg_latency_ms",), "Figure 5"))

    for algorithm in ("Appro", "Heu"):
        series = latency_series(sweep, algorithm)
        assert series[-1] <= series[0] * 1.05, (
            f"{algorithm} latency should shrink with |BS|: {series}")
