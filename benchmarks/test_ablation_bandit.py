"""Ablation: successive elimination vs UCB1 as the threshold learner.

Algorithm 3 uses successive elimination; UCB1 is the classical
alternative.  Both drive the same LP-PT + rounding machinery, so the
difference isolates the arm-selection rule.  The paper's choice should
be competitive (within a modest band) - and the bench prints both so
regressions in either learner are visible.
"""


from repro.config import SimulationConfig
from repro.core.dynamic_rr import DynamicRR
from repro.core.instance import ProblemInstance
from repro.sim.online_engine import OnlineEngine

SEEDS = (0, 1)
HORIZON = 80
NUM_REQUESTS = 250


def total_reward(bandit_policy: str) -> float:
    total = 0.0
    for seed in SEEDS:
        instance = ProblemInstance.build(SimulationConfig(seed=seed))
        workload = instance.new_workload(NUM_REQUESTS, seed=seed,
                                         horizon_slots=HORIZON)
        engine = OnlineEngine(instance, workload, horizon_slots=HORIZON,
                              rng=seed)
        policy = DynamicRR(bandit_policy=bandit_policy, rng=seed)
        total += engine.run(policy).total_reward
    return total


def test_bandit_policy_ablation(benchmark):
    out = {}

    def run():
        out["se"] = total_reward("se")
        out["ucb1"] = total_reward("ucb1")
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Threshold learner ablation (total reward over "
          f"{len(SEEDS)} seeds, T={HORIZON}):")
    print(f"  successive elimination: {out['se']:12.1f}")
    print(f"  UCB1                  : {out['ucb1']:12.1f}")

    # The paper's learner must be competitive with UCB1.
    assert out["se"] >= 0.8 * out["ucb1"]
    assert out["ucb1"] >= 0.8 * out["se"]
