"""Figure 4: online algorithms vs number of requests.

Panels: (a) total reward, (b) average latency - for DynamicRR, Greedy,
OCORP, HeuKKT (online versions, slotted arrivals, preemptive waiting).

Paper shapes asserted here:

* DynamicRR earns more reward than HeuKKT *and* has lower latency
  (the MAB threshold avoids starving low-reward requests while the
  cloud spillover drags HeuKKT's latency up).
* Greedy/OCORP have the lowest latencies but far lower rewards.
* Rewards grow with |R| then flatten (capacity saturation).
"""

import time


from conftest import (bench_workers, record_bench,
                      reward_series, series_sum)
from repro.experiments import bench_scale, figure4, render_figure

_CACHE = {}


def run_figure4():
    if "sweep" not in _CACHE:
        started = time.perf_counter()
        _CACHE["sweep"] = figure4(bench_scale(),
                                  workers=bench_workers())
        record_bench("bench-fig4", {"fig4": _CACHE["sweep"]},
                     phases={"fig4": time.perf_counter() - started})
    return _CACHE["sweep"]


def test_fig4a_total_reward(benchmark):
    sweep = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("total_reward",), "Figure 4"))

    dynamic = series_sum(sweep, "DynamicRR")
    assert dynamic > series_sum(sweep, "HeuKKT")
    assert dynamic > series_sum(sweep, "OCORP")
    assert dynamic > series_sum(sweep, "Greedy")
    # Reward grows with offered load (saturation flattens it at the
    # paper-scale sweep; at bench scale the sweep ends near the knee).
    series = reward_series(sweep, "DynamicRR")
    assert series[-1] >= series[0]


def test_fig4b_avg_latency(benchmark):
    sweep = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("avg_latency_ms",), "Figure 4"))

    dynamic = series_sum(sweep, "DynamicRR", "avg_latency_ms")
    assert dynamic < series_sum(sweep, "HeuKKT", "avg_latency_ms")
    assert dynamic > series_sum(sweep, "Greedy", "avg_latency_ms")
    assert dynamic > series_sum(sweep, "OCORP", "avg_latency_ms")
