"""Substrate benchmark: LP backends on the paper's actual relaxation.

Times the from-scratch simplex against HiGHS on one slot-indexed LP
instance and asserts they find the same optimum - the running-time gap
is the reason the experiment sweeps default to the HiGHS backend while
the simplex remains the reference implementation.
"""

import pytest

from repro.config import (NetworkConfig, RequestConfig, SimulationConfig)
from repro.core.instance import ProblemInstance
from repro.core.lp_relaxation import build_lp_relaxation
from repro.solver.interface import solve_lp

_CACHE = {}


def built_lp():
    if "lp" not in _CACHE:
        config = SimulationConfig(
            network=NetworkConfig(num_base_stations=8),
            requests=RequestConfig(num_requests=15), seed=0)
        instance = ProblemInstance.build(config, seed=0)
        workload = instance.new_workload(15, seed=0)
        _CACHE["lp"], _ = build_lp_relaxation(instance, workload)
    return _CACHE["lp"]


def test_lp_backend_scipy(benchmark):
    lp = built_lp()
    solution = benchmark(lambda: solve_lp(lp, backend="scipy"))
    _CACHE["scipy_obj"] = solution.objective
    assert solution.objective > 0


def test_lp_backend_simplex(benchmark):
    lp = built_lp()
    solution = benchmark.pedantic(
        lambda: solve_lp(lp, backend="simplex"), rounds=1, iterations=1)
    print()
    print(f"simplex objective: {solution.objective:.3f}")
    if "scipy_obj" in _CACHE:
        assert solution.objective == pytest.approx(_CACHE["scipy_obj"],
                                                   rel=1e-6)
