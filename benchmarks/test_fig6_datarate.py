"""Figure 6: online algorithms vs the maximum data rate of a request.

Panels: (a) total reward, (b) average latency.

Paper shapes asserted here:

* Reward grows with the maximum data rate (larger streams bill more).
* Latency grows with the maximum data rate (more processing per
  request, heavier congestion).
"""

import time


from conftest import (bench_workers, latency_series, record_bench,
                      reward_series, series_sum)
from repro.experiments import bench_scale, figure6, render_figure

_CACHE = {}


def run_figure6():
    if "sweep" not in _CACHE:
        started = time.perf_counter()
        _CACHE["sweep"] = figure6(bench_scale(),
                                  workers=bench_workers())
        record_bench("bench-fig6", {"fig6": _CACHE["sweep"]},
                     phases={"fig6": time.perf_counter() - started})
    return _CACHE["sweep"]


def test_fig6a_total_reward(benchmark):
    sweep = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("total_reward",), "Figure 6"))

    for algorithm in ("DynamicRR", "HeuKKT"):
        series = reward_series(sweep, algorithm)
        assert series[-1] > series[0], (
            f"{algorithm} reward should grow with the max rate: "
            f"{series}")
    assert series_sum(sweep, "DynamicRR") > series_sum(sweep, "OCORP")


def test_fig6b_avg_latency(benchmark):
    sweep = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("avg_latency_ms",), "Figure 6"))

    # The baselines show the paper's increasing shape cleanly (heavier
    # streams congest their local/balanced placements); DynamicRR's
    # threshold control keeps its latency nearly flat - assert it stays
    # within a noise band rather than strictly increasing.
    ocorp = latency_series(sweep, "OCORP")
    heukkt = latency_series(sweep, "HeuKKT")
    assert ocorp[-1] >= ocorp[0]
    assert heukkt[-1] >= heukkt[0]
    dynamic = latency_series(sweep, "DynamicRR")
    assert dynamic[-1] >= dynamic[0] * 0.8, (
        f"DynamicRR latency collapsed with the max rate: {dynamic}")
