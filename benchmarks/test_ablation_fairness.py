"""Ablation: scheduling-starvation fairness (the motivation of Alg. 3).

Section V motivates DynamicRR with *temporal fairness*: applying the
offline machinery slot by slot "may increase the waiting time of
requests with low rewards" - starvation.  This bench measures Jain's
fairness index over per-request waiting times (1.0 = perfectly fair)
for the online algorithms on a bursty arrival pattern, where starvation
actually has room to appear.
"""


from repro.baselines import GreedyOnline, HeuKktOnline, OcorpOnline
from repro.config import SimulationConfig
from repro.core.dynamic_rr import DynamicRR
from repro.core.instance import ProblemInstance
from repro.requests.arrivals import assign_arrival_slots, burst_arrivals
from repro.sim.metrics import jains_fairness_index
from repro.sim.online_engine import OnlineEngine

SEEDS = (0, 1)
HORIZON = 80
NUM_REQUESTS = 220


def run_policy(factory):
    fairness, rewards = [], 0.0
    for seed in SEEDS:
        instance = ProblemInstance.build(SimulationConfig(seed=seed))
        base = instance.new_workload(NUM_REQUESTS, seed=seed)
        slots = burst_arrivals(NUM_REQUESTS, HORIZON, burst_start=20,
                               burst_length=8, burst_fraction=0.5,
                               rng=seed)
        workload = assign_arrival_slots(base, slots)
        engine = OnlineEngine(instance, workload, horizon_slots=HORIZON,
                              rng=seed)
        result = engine.run(factory())
        fairness.append(jains_fairness_index(
            result.waiting_distribution_ms()))
        rewards += result.total_reward
    return sum(fairness) / len(fairness), rewards


def test_waiting_fairness(benchmark):
    out = {}

    def run():
        for name, factory in (("DynamicRR", DynamicRR),
                              ("Greedy", GreedyOnline),
                              ("OCORP", OcorpOnline),
                              ("HeuKKT", HeuKktOnline)):
            out[name] = run_policy(factory)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Waiting-time fairness under a burst "
          "(Jain's index, 1.0 = fair):")
    for name, (fairness, reward) in out.items():
        print(f"  {name:10s} fairness={fairness:.3f}  "
              f"reward={reward:10.1f}")

    # DynamicRR must not starve: its waiting fairness stays within a
    # modest band of the best policy while it earns the most reward.
    best_fairness = max(f for f, _r in out.values())
    dyn_fairness, dyn_reward = out["DynamicRR"]
    assert dyn_fairness >= 0.5 * best_fairness
    assert dyn_reward >= 0.95 * max(r for _f, r in out.values())
