"""Figure 3: offline algorithms vs number of requests.

Panels: (a) total reward, (b) average latency of a request,
(c) running time - for Appro, Heu, Greedy, OCORP, HeuKKT.

Paper shapes asserted here:

* Heu earns the most reward; Appro beats the latency-greedy baselines
  (OCORP, Greedy) by a wide margin (paper: +50% / +80%).
* Greedy and OCORP have the lowest average latencies (they trade
  reward for latency); HeuKKT has the highest (cloud spillover).
* Appro/Heu carry the highest running times (they solve an LP).
"""

import time


from conftest import (bench_workers, record_bench,
                      reward_series, series_sum)
from repro.experiments import bench_scale, figure3, render_figure

_CACHE = {}


def run_figure3():
    if "sweep" not in _CACHE:
        started = time.perf_counter()
        _CACHE["sweep"] = figure3(bench_scale(),
                                  workers=bench_workers())
        record_bench("bench-fig3", {"fig3": _CACHE["sweep"]},
                     phases={"fig3": time.perf_counter() - started})
    return _CACHE["sweep"]


def test_fig3a_total_reward(benchmark):
    sweep = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("total_reward",), "Figure 3"))

    heu = series_sum(sweep, "Heu")
    appro = series_sum(sweep, "Appro")
    assert heu > series_sum(sweep, "OCORP")
    assert heu > series_sum(sweep, "Greedy")
    assert heu > series_sum(sweep, "HeuKKT")
    assert appro > 1.3 * series_sum(sweep, "OCORP")
    assert appro > 1.5 * series_sum(sweep, "Greedy")
    # Rewards are non-decreasing-ish in |R| for the reward-aware
    # algorithms (saturation, not decline).
    heu_series = reward_series(sweep, "Heu")
    assert heu_series[-1] >= 0.9 * max(heu_series)


def test_fig3b_avg_latency(benchmark):
    sweep = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("avg_latency_ms",), "Figure 3"))

    assert (series_sum(sweep, "Greedy", "avg_latency_ms")
            < series_sum(sweep, "Heu", "avg_latency_ms"))
    assert (series_sum(sweep, "OCORP", "avg_latency_ms")
            < series_sum(sweep, "Heu", "avg_latency_ms"))
    assert (series_sum(sweep, "HeuKKT", "avg_latency_ms")
            > series_sum(sweep, "Appro", "avg_latency_ms"))


def test_fig3c_running_time(benchmark):
    sweep = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    print()
    print(render_figure(sweep, ("runtime_s",), "Figure 3"))

    assert (series_sum(sweep, "Appro", "runtime_s")
            > series_sum(sweep, "Greedy", "runtime_s"))
    assert (series_sum(sweep, "Heu", "runtime_s")
            > series_sum(sweep, "OCORP", "runtime_s"))
