"""Ablation: DynamicRR vs the clairvoyant offline bound.

Theorem 3 bounds regret against the best *fixed threshold*; here the
comparator is much stronger - a clairvoyant scheduler knowing every
arrival and realized rate, relaxed to a pooled capacity timeline.
The measured competitive ratio contextualizes the online rewards; the
baselines trail further behind the bound.
"""


from repro.baselines import HeuKktOnline, OcorpOnline
from repro.config import SimulationConfig
from repro.core.clairvoyant import clairvoyant_bound, competitive_ratio
from repro.core.dynamic_rr import DynamicRR
from repro.core.instance import ProblemInstance
from repro.sim.online_engine import OnlineEngine

SEEDS = (0, 1)
HORIZON = 80
NUM_REQUESTS = 250


def measure(factory):
    ratios = []
    for seed in SEEDS:
        instance = ProblemInstance.build(SimulationConfig(seed=seed))
        workload = instance.new_workload(NUM_REQUESTS, seed=seed,
                                         horizon_slots=HORIZON)
        engine = OnlineEngine(instance, workload, horizon_slots=HORIZON,
                              rng=seed)
        result = engine.run(factory())
        bound = clairvoyant_bound(instance, workload,
                                  horizon_slots=HORIZON, rng=seed)
        ratios.append(competitive_ratio(result.total_reward, bound))
    return sum(ratios) / len(ratios)


def test_competitive_ratio_vs_clairvoyant(benchmark):
    out = {}

    def run():
        out["DynamicRR"] = measure(DynamicRR)
        out["OCORP"] = measure(OcorpOnline)
        out["HeuKKT"] = measure(HeuKktOnline)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Empirical competitive ratio vs clairvoyant pooled bound:")
    for name, ratio in out.items():
        print(f"  {name:10s} {ratio:.3f}")

    # Ratios are genuine fractions of a strictly stronger comparator.
    assert 0.0 < out["DynamicRR"] <= 1.0 + 1e-9
    # DynamicRR must be the closest online policy to the bound.
    assert out["DynamicRR"] >= out["OCORP"]
    assert out["DynamicRR"] >= out["HeuKKT"]
    # And not embarrassingly far from it at saturation.
    assert out["DynamicRR"] >= 0.35
