"""Substrate benchmark: LP build+solve scaling with problem size.

Verifies the running-time claim behind Fig. 3(c): the Appro pipeline's
cost is dominated by the LP whose size grows as |R| x |BS| x L, while
the baselines stay near-linear.  Prints the measured build/solve times
so performance regressions in the LP layer are visible.
"""

import time
from dataclasses import replace


from repro.config import SimulationConfig
from repro.core.instance import ProblemInstance
from repro.core.lp_relaxation import build_lp_relaxation
from repro.solver.interface import solve_lp


def measure(num_requests: int, num_stations: int):
    config = SimulationConfig(seed=0)
    config = replace(config, network=replace(
        config.network, num_base_stations=num_stations)).validate()
    instance = ProblemInstance.build(config, seed=0)
    workload = instance.new_workload(num_requests, seed=0)
    t0 = time.perf_counter()
    lp, _ = build_lp_relaxation(instance, workload)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    solve_lp(lp, backend="scipy")
    solve_s = time.perf_counter() - t0
    return lp.num_variables, build_s, solve_s


def test_lp_scaling(benchmark):
    out = {}

    def run():
        out["rows"] = [
            (n, bs) + measure(n, bs)
            for n, bs in ((50, 10), (100, 20), (200, 20))
        ]
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("LP size and time vs problem size:")
    print(f"{'|R|':>6} {'|BS|':>6} {'vars':>8} {'build s':>9} "
          f"{'solve s':>9}")
    for n, bs, nvars, build_s, solve_s in out["rows"]:
        print(f"{n:>6} {bs:>6} {nvars:>8} {build_s:>9.3f} "
              f"{solve_s:>9.3f}")

    rows = out["rows"]
    # Variable count tracks |R| x |BS| x L.
    assert rows[-1][2] > rows[0][2]
    # The whole pipeline stays tractable at paper scale.
    total = sum(b + s for *_x, b, s in rows)
    assert total < 30.0
