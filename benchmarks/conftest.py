"""Shared helpers for the benchmark suite.

Every figure bench runs its experiment once (``benchmark.pedantic``
with a single round - these are simulations, not microbenchmarks),
prints the paper-style series table, and asserts the figure's
qualitative shape so a green benchmark run doubles as a reproduction
check.  ``pytest benchmarks/ --benchmark-only -s`` shows the tables.
"""

from __future__ import annotations

import os

import pytest


def bench_workers() -> int:
    """Worker processes for the figure sweeps.

    Set ``REPRO_BENCH_WORKERS=N`` to fan each sweep out over N
    processes (0 = one per CPU); records - and therefore every shape
    assertion - are identical for any value, only wall-clock changes.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def record_bench(name, sweeps, phases=None, extra=None):
    """Append a run manifest to the ledger named by the environment.

    Set ``REPRO_BENCH_LEDGER=path/to/ledger.jsonl`` to make every
    figure bench append its provenance manifest (config hash, seeds,
    git rev, per-phase wall-clock, peak RSS, headline metrics) as it
    runs; diff two such ledgers with ``python -m repro.experiments
    bench-diff``.  A no-op when the variable is unset, so plain
    benchmark runs stay side-effect free.
    """
    path = os.environ.get("REPRO_BENCH_LEDGER")
    if not path:
        return None
    from repro.telemetry import append_ledger, manifest_from_sweeps

    manifest = manifest_from_sweeps(
        name, sweeps, workers=bench_workers(), phases=phases,
        extra=extra or {"suite": "benchmarks"})
    append_ledger(path, manifest)
    return manifest


def reward_series(sweep, algorithm):
    """Mean total-reward series of one algorithm."""
    _xs, means, _stds = sweep.series(algorithm, "total_reward")
    return means


def latency_series(sweep, algorithm):
    """Mean average-latency series of one algorithm."""
    _xs, means, _stds = sweep.series(algorithm, "avg_latency_ms")
    return means


def series_sum(sweep, algorithm, metric="total_reward"):
    """Sum of an algorithm's mean series (a scalar ordering proxy)."""
    _xs, means, _stds = sweep.series(algorithm, metric)
    return sum(means)
