"""Ablation: end-to-end regret of DynamicRR on the real system.

Theorem 3's regret is defined against the best fixed threshold.  This
bench measures exactly that: run FixedThresholdRR over the arm grid to
find ``ER^*(Z')`` on the actual MEC simulation, run DynamicRR on the
same arrivals, and report the normalized regret.  Sub-linearity is the
claim: the per-slot regret must be a modest fraction of the best fixed
arm's per-slot reward (learning cost amortizes over the horizon).
"""

import numpy as np

from repro.config import SimulationConfig
from repro.core.dynamic_rr import DynamicRR
from repro.core.fixed_threshold import best_fixed_threshold
from repro.core.instance import ProblemInstance
from repro.sim.online_engine import OnlineEngine

SEEDS = (0, 1)
HORIZON = 80
NUM_REQUESTS = 250
THRESHOLDS = (200.0, 400.0, 600.0, 800.0, 1000.0)


def measure(seed):
    instance = ProblemInstance.build(SimulationConfig(seed=seed))

    def workload():
        return instance.new_workload(NUM_REQUESTS, seed=seed,
                                     horizon_slots=HORIZON)

    best_arm, best_reward, by_threshold = best_fixed_threshold(
        instance, workload, THRESHOLDS, horizon_slots=HORIZON,
        rng_seed=seed)
    engine = OnlineEngine(instance, workload(), horizon_slots=HORIZON,
                          rng=seed)
    dynamic_reward = engine.run(DynamicRR(rng=seed)).total_reward
    return best_arm, best_reward, dynamic_reward, by_threshold


def test_system_regret_vs_best_fixed_threshold(benchmark):
    out = {}

    def run():
        out["rows"] = [measure(seed) for seed in SEEDS]
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("End-to-end Theorem 3 regret (best fixed C^th vs DynamicRR):")
    regrets = []
    for seed, (best_arm, best_reward, dynamic_reward,
               by_threshold) in zip(SEEDS, out["rows"]):
        regret = best_reward - dynamic_reward
        rel = regret / best_reward if best_reward > 0 else 0.0
        regrets.append(rel)
        print(f"  seed {seed}: best arm C^th={best_arm:.0f} MHz "
              f"(${best_reward:.0f}), DynamicRR ${dynamic_reward:.0f}, "
              f"relative regret {rel:+.1%}")
        spread = ", ".join(f"{t:.0f}:{r:.0f}"
                           for t, r in sorted(by_threshold.items()))
        print(f"    fixed-arm rewards: {spread}")

    # The arms must genuinely differ (else the bandit has nothing to
    # learn and the bench is vacuous).
    _b, _r, _d, by_threshold = out["rows"][0]
    values = list(by_threshold.values())
    assert max(values) > 1.1 * min(values)
    # Theorem 3 in practice: the learning cost is a modest fraction of
    # the best fixed arm's reward over this horizon.
    mean_rel_regret = float(np.mean(regrets))
    assert mean_rel_regret <= 0.25
